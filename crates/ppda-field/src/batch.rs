//! Vectorized polynomial evaluation: many polynomials, one x-set.
//!
//! Batched secret sharing evaluates B independent share polynomials at the
//! *same* public points (one per share holder). Doing that lane-wise over a
//! structure-of-arrays coefficient slab turns B·(d+1) scattered Horner
//! loops into d+1 passes of B independent multiply-adds each — the memory
//! access is sequential and the multiplies pipeline, where the
//! array-of-polynomials form stalls on one dependent chain per lane.

use rand::RngCore;

use crate::element::{Gf, PrimeField};
use crate::poly::Polynomial;

/// A batch of `lanes` dense polynomials of the same degree bound, stored as
/// a degree-major coefficient slab: `coeffs[d * lanes + lane]` is lane
/// `lane`'s degree-`d` coefficient.
///
/// In Shamir terms, lane `l`'s constant coefficient is the `l`-th secret
/// and the remaining coefficients are uniformly random.
///
/// # Example
///
/// ```
/// use ppda_field::{Gf31, Mersenne31, PolyBatch, SplitMix64};
/// let mut rng = SplitMix64::new(1);
/// let secrets = [Gf31::new(5), Gf31::new(9)];
/// let batch = PolyBatch::<Mersenne31>::random_with_constants(&secrets, 3, &mut rng);
/// let mut at_zero = [Gf31::ZERO; 2];
/// batch.eval_at_into(Gf31::ZERO, &mut at_zero);
/// assert_eq!(at_zero, secrets);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolyBatch<P: PrimeField> {
    lanes: usize,
    degree: usize,
    coeffs: Vec<Gf<P>>,
}

impl<P: PrimeField> PolyBatch<P> {
    /// A batch of `lanes` zero polynomials with degree bound `degree`,
    /// ready for [`PolyBatch::refill_random`].
    pub fn zeroed(degree: usize, lanes: usize) -> Self {
        PolyBatch {
            lanes,
            degree,
            coeffs: vec![Gf::ZERO; (degree + 1) * lanes],
        }
    }

    /// Fresh uniformly random polynomials with the given constant terms.
    ///
    /// The degree bound is exact in the [`Polynomial::random_with_constant`]
    /// sense: top coefficients may be zero. Lane count equals
    /// `constants.len()`.
    pub fn random_with_constants<R: RngCore + ?Sized>(
        constants: &[Gf<P>],
        degree: usize,
        rng: &mut R,
    ) -> Self {
        let mut batch = Self::zeroed(degree, constants.len());
        batch.refill_random(constants, rng);
        batch
    }

    /// Refill in place with fresh random polynomials (reuses the slab).
    ///
    /// Randomness is drawn **lane-major** — lane 0's coefficients first,
    /// ascending degree — exactly the order `lanes` sequential
    /// [`Polynomial::random_with_constant`] calls would consume, so batched
    /// and scalar share generation are interchangeable under one RNG.
    ///
    /// # Panics
    ///
    /// Panics if `constants.len()` differs from the batch's lane count.
    pub fn refill_random<R: RngCore + ?Sized>(&mut self, constants: &[Gf<P>], rng: &mut R) {
        assert_eq!(
            constants.len(),
            self.lanes,
            "constants must cover all lanes"
        );
        for (lane, &c) in constants.iter().enumerate() {
            self.coeffs[lane] = c;
            for d in 1..=self.degree {
                self.coeffs[d * self.lanes + lane] = Gf::random(rng);
            }
        }
    }

    /// Number of polynomials in the batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The shared degree bound.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The constant terms (lane-ordered): the secrets under SSS.
    pub fn constants(&self) -> &[Gf<P>] {
        &self.coeffs[..self.lanes]
    }

    /// Evaluate every lane at `x` by Horner's rule through the build's
    /// packed backend (see [`crate::packed`]): whole vector-width chunks
    /// keep their accumulators in registers across all degrees, and the
    /// `lanes % WIDTH` tail runs the scalar path — both produce the exact
    /// element the scalar oracle does.
    ///
    /// A zero-lane batch is a no-op; a degree-0 batch copies the constants.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the lane count.
    pub fn eval_at_into(&self, x: Gf<P>, out: &mut [Gf<P>]) {
        crate::packed::horner_lanes_into(&self.coeffs, self.lanes, self.degree, x, out);
    }

    /// Evaluate every lane at every point of `xs` into an x-major slab:
    /// `out[i * lanes + lane]` is lane `lane` evaluated at `xs[i]`.
    ///
    /// `out` is cleared and resized to `xs.len() * lanes` — so it ends
    /// empty (not a panic) when `xs` is empty or the batch has zero lanes.
    pub fn eval_many_into(&self, xs: &[Gf<P>], out: &mut Vec<Gf<P>>) {
        out.clear();
        if self.lanes == 0 || xs.is_empty() {
            return;
        }
        out.resize(xs.len() * self.lanes, Gf::ZERO);
        for (&x, row) in xs.iter().zip(out.chunks_mut(self.lanes)) {
            self.eval_at_into(x, row);
        }
    }

    /// Evaluate every lane at every point of `xs` (allocating convenience
    /// over [`PolyBatch::eval_many_into`]).
    pub fn eval_many(&self, xs: &[Gf<P>]) -> Vec<Gf<P>> {
        let mut out = Vec::new();
        self.eval_many_into(xs, &mut out);
        out
    }

    /// Extract one lane as a standalone [`Polynomial`] (test/debug aid).
    pub fn lane_poly(&self, lane: usize) -> Polynomial<P> {
        let coeffs = (0..=self.degree)
            .map(|d| self.coeffs[d * self.lanes + lane])
            .collect();
        Polynomial::new(coeffs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Gf31, Mersenne31};
    use crate::SplitMix64;

    #[test]
    fn batch_matches_sequential_scalar_polynomials() {
        // The contract batched secret sharing relies on: one RNG, drawn
        // lane-major, gives the same polynomials as sequential scalar calls.
        let secrets: Vec<Gf31> = (0..5).map(|i| Gf31::new(100 + i)).collect();
        let degree = 4;

        let mut rng_batch = SplitMix64::new(77);
        let batch =
            PolyBatch::<Mersenne31>::random_with_constants(&secrets, degree, &mut rng_batch);

        let mut rng_scalar = SplitMix64::new(77);
        for (lane, &s) in secrets.iter().enumerate() {
            let poly = Polynomial::<Mersenne31>::random_with_constant(s, degree, &mut rng_scalar);
            assert_eq!(batch.lane_poly(lane), poly, "lane {lane}");
        }
        // And the RNGs end in the same state.
        assert_eq!(rng_batch.next_u64(), rng_scalar.next_u64());
    }

    #[test]
    fn eval_matches_per_lane_eval() {
        let mut rng = SplitMix64::new(3);
        let secrets: Vec<Gf31> = (0..7).map(|i| Gf31::new(i * i)).collect();
        let batch = PolyBatch::<Mersenne31>::random_with_constants(&secrets, 3, &mut rng);
        let xs: Vec<Gf31> = (1u64..=6).map(Gf31::new).collect();
        let slab = batch.eval_many(&xs);
        assert_eq!(slab.len(), xs.len() * batch.lanes());
        for (i, &x) in xs.iter().enumerate() {
            for lane in 0..batch.lanes() {
                assert_eq!(
                    slab[i * batch.lanes() + lane],
                    batch.lane_poly(lane).eval(x),
                    "x index {i}, lane {lane}"
                );
            }
        }
    }

    #[test]
    fn constants_are_the_secrets() {
        let mut rng = SplitMix64::new(4);
        let secrets = [Gf31::new(11), Gf31::new(22)];
        let batch = PolyBatch::<Mersenne31>::random_with_constants(&secrets, 2, &mut rng);
        assert_eq!(batch.constants(), &secrets);
        let mut at_zero = [Gf31::ZERO; 2];
        batch.eval_at_into(Gf31::ZERO, &mut at_zero);
        assert_eq!(at_zero, secrets);
    }

    #[test]
    fn refill_reuses_capacity() {
        let mut rng = SplitMix64::new(5);
        let mut batch = PolyBatch::<Mersenne31>::zeroed(3, 4);
        let secrets: Vec<Gf31> = (0..4).map(Gf31::new).collect();
        batch.refill_random(&secrets, &mut rng);
        let first = batch.clone();
        batch.refill_random(&secrets, &mut rng);
        assert_ne!(first, batch, "fresh randomness per refill");
        assert_eq!(batch.constants(), &secrets[..]);
        assert_eq!(batch.degree(), 3);
        assert_eq!(batch.lanes(), 4);
    }

    #[test]
    fn degree_zero_batch_is_constant() {
        let mut rng = SplitMix64::new(6);
        let secrets = [Gf31::new(9)];
        let batch = PolyBatch::<Mersenne31>::random_with_constants(&secrets, 0, &mut rng);
        let mut out = [Gf31::ZERO; 1];
        batch.eval_at_into(Gf31::new(1234), &mut out);
        assert_eq!(out[0], Gf31::new(9));
    }

    #[test]
    fn zero_lane_batch_is_well_defined() {
        // Zero lanes: every operation is a no-op, never a panic.
        let mut rng = SplitMix64::new(8);
        let mut batch = PolyBatch::<Mersenne31>::zeroed(3, 0);
        batch.refill_random(&[], &mut rng);
        assert_eq!(batch.lanes(), 0);
        assert_eq!(batch.constants(), &[]);
        let mut out: [Gf31; 0] = [];
        batch.eval_at_into(Gf31::new(5), &mut out);
        let mut slab = vec![Gf31::ONE; 3];
        batch.eval_many_into(&[Gf31::ONE, Gf31::new(2)], &mut slab);
        assert!(slab.is_empty(), "zero-lane slab is empty");
        assert!(batch.eval_many(&[Gf31::ONE]).is_empty());
    }

    #[test]
    fn empty_xs_yield_empty_slab() {
        let mut rng = SplitMix64::new(9);
        let batch = PolyBatch::<Mersenne31>::random_with_constants(&[Gf31::new(4)], 2, &mut rng);
        let mut slab = vec![Gf31::ONE; 7];
        batch.eval_many_into(&[], &mut slab);
        assert!(slab.is_empty(), "no points, no values");
    }

    #[test]
    fn odd_lane_counts_cover_packed_tails() {
        // Lane counts straddling the packed width exercise full chunks,
        // tails, and the all-tail case against the per-lane polynomials.
        let mut rng = SplitMix64::new(10);
        for lanes in [1usize, 3, 4, 5, 7, 9, 16, 23] {
            let secrets: Vec<Gf31> = (0..lanes as u64).map(|i| Gf31::new(i * 31 + 1)).collect();
            let batch = PolyBatch::<Mersenne31>::random_with_constants(&secrets, 3, &mut rng);
            let x = Gf31::new(0xABCD);
            let mut out = vec![Gf31::ZERO; lanes];
            batch.eval_at_into(x, &mut out);
            for (lane, &got) in out.iter().enumerate() {
                assert_eq!(
                    got,
                    batch.lane_poly(lane).eval(x),
                    "lanes={lanes} lane={lane}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "all lanes")]
    fn lane_mismatch_panics() {
        let mut rng = SplitMix64::new(7);
        let batch = PolyBatch::<Mersenne31>::random_with_constants(&[Gf31::new(1)], 1, &mut rng);
        let mut out = [Gf31::ZERO; 2];
        batch.eval_at_into(Gf31::ONE, &mut out);
    }
}
