//! Vectorized polynomial evaluation: many polynomials, one x-set.
//!
//! Batched secret sharing evaluates B independent share polynomials at the
//! *same* public points (one per share holder). Doing that lane-wise over a
//! structure-of-arrays coefficient slab turns B·(d+1) scattered Horner
//! loops into d+1 passes of B independent multiply-adds each — the memory
//! access is sequential and the multiplies pipeline, where the
//! array-of-polynomials form stalls on one dependent chain per lane.

use rand::RngCore;

use crate::element::{Gf, PrimeField};
use crate::poly::Polynomial;

/// A batch of `lanes` dense polynomials of the same degree bound, stored as
/// a degree-major coefficient slab: `coeffs[d * lanes + lane]` is lane
/// `lane`'s degree-`d` coefficient.
///
/// In Shamir terms, lane `l`'s constant coefficient is the `l`-th secret
/// and the remaining coefficients are uniformly random.
///
/// # Example
///
/// ```
/// use ppda_field::{Gf31, Mersenne31, PolyBatch, SplitMix64};
/// let mut rng = SplitMix64::new(1);
/// let secrets = [Gf31::new(5), Gf31::new(9)];
/// let batch = PolyBatch::<Mersenne31>::random_with_constants(&secrets, 3, &mut rng);
/// let mut at_zero = [Gf31::ZERO; 2];
/// batch.eval_at_into(Gf31::ZERO, &mut at_zero);
/// assert_eq!(at_zero, secrets);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolyBatch<P: PrimeField> {
    lanes: usize,
    degree: usize,
    coeffs: Vec<Gf<P>>,
}

impl<P: PrimeField> PolyBatch<P> {
    /// A batch of `lanes` zero polynomials with degree bound `degree`,
    /// ready for [`PolyBatch::refill_random`].
    pub fn zeroed(degree: usize, lanes: usize) -> Self {
        PolyBatch {
            lanes,
            degree,
            coeffs: vec![Gf::ZERO; (degree + 1) * lanes],
        }
    }

    /// Fresh uniformly random polynomials with the given constant terms.
    ///
    /// The degree bound is exact in the [`Polynomial::random_with_constant`]
    /// sense: top coefficients may be zero. Lane count equals
    /// `constants.len()`.
    pub fn random_with_constants<R: RngCore + ?Sized>(
        constants: &[Gf<P>],
        degree: usize,
        rng: &mut R,
    ) -> Self {
        let mut batch = Self::zeroed(degree, constants.len());
        batch.refill_random(constants, rng);
        batch
    }

    /// Refill in place with fresh random polynomials (reuses the slab).
    ///
    /// Randomness is drawn **lane-major** — lane 0's coefficients first,
    /// ascending degree — exactly the order `lanes` sequential
    /// [`Polynomial::random_with_constant`] calls would consume, so batched
    /// and scalar share generation are interchangeable under one RNG.
    ///
    /// # Panics
    ///
    /// Panics if `constants.len()` differs from the batch's lane count.
    pub fn refill_random<R: RngCore + ?Sized>(&mut self, constants: &[Gf<P>], rng: &mut R) {
        assert_eq!(
            constants.len(),
            self.lanes,
            "constants must cover all lanes"
        );
        for (lane, &c) in constants.iter().enumerate() {
            self.coeffs[lane] = c;
            for d in 1..=self.degree {
                self.coeffs[d * self.lanes + lane] = Gf::random(rng);
            }
        }
    }

    /// Number of polynomials in the batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The shared degree bound.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The constant terms (lane-ordered): the secrets under SSS.
    pub fn constants(&self) -> &[Gf<P>] {
        &self.coeffs[..self.lanes]
    }

    /// Evaluate every lane at `x` by Horner's rule, one slab pass per
    /// coefficient degree.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the lane count.
    pub fn eval_at_into(&self, x: Gf<P>, out: &mut [Gf<P>]) {
        assert_eq!(out.len(), self.lanes, "output must cover all lanes");
        out.fill(Gf::ZERO);
        for d in (0..=self.degree).rev() {
            let row = &self.coeffs[d * self.lanes..(d + 1) * self.lanes];
            for (acc, &c) in out.iter_mut().zip(row) {
                *acc = *acc * x + c;
            }
        }
    }

    /// Evaluate every lane at every point of `xs` into an x-major slab:
    /// `out[i * lanes + lane]` is lane `lane` evaluated at `xs[i]`.
    ///
    /// `out` is cleared and resized to `xs.len() * lanes`.
    pub fn eval_many_into(&self, xs: &[Gf<P>], out: &mut Vec<Gf<P>>) {
        out.clear();
        out.resize(xs.len() * self.lanes, Gf::ZERO);
        for (&x, row) in xs.iter().zip(out.chunks_mut(self.lanes)) {
            self.eval_at_into(x, row);
        }
    }

    /// Evaluate every lane at every point of `xs` (allocating convenience
    /// over [`PolyBatch::eval_many_into`]).
    pub fn eval_many(&self, xs: &[Gf<P>]) -> Vec<Gf<P>> {
        let mut out = Vec::new();
        self.eval_many_into(xs, &mut out);
        out
    }

    /// Extract one lane as a standalone [`Polynomial`] (test/debug aid).
    pub fn lane_poly(&self, lane: usize) -> Polynomial<P> {
        let coeffs = (0..=self.degree)
            .map(|d| self.coeffs[d * self.lanes + lane])
            .collect();
        Polynomial::new(coeffs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Gf31, Mersenne31};
    use crate::SplitMix64;

    #[test]
    fn batch_matches_sequential_scalar_polynomials() {
        // The contract batched secret sharing relies on: one RNG, drawn
        // lane-major, gives the same polynomials as sequential scalar calls.
        let secrets: Vec<Gf31> = (0..5).map(|i| Gf31::new(100 + i)).collect();
        let degree = 4;

        let mut rng_batch = SplitMix64::new(77);
        let batch =
            PolyBatch::<Mersenne31>::random_with_constants(&secrets, degree, &mut rng_batch);

        let mut rng_scalar = SplitMix64::new(77);
        for (lane, &s) in secrets.iter().enumerate() {
            let poly = Polynomial::<Mersenne31>::random_with_constant(s, degree, &mut rng_scalar);
            assert_eq!(batch.lane_poly(lane), poly, "lane {lane}");
        }
        // And the RNGs end in the same state.
        assert_eq!(rng_batch.next_u64(), rng_scalar.next_u64());
    }

    #[test]
    fn eval_matches_per_lane_eval() {
        let mut rng = SplitMix64::new(3);
        let secrets: Vec<Gf31> = (0..7).map(|i| Gf31::new(i * i)).collect();
        let batch = PolyBatch::<Mersenne31>::random_with_constants(&secrets, 3, &mut rng);
        let xs: Vec<Gf31> = (1u64..=6).map(Gf31::new).collect();
        let slab = batch.eval_many(&xs);
        assert_eq!(slab.len(), xs.len() * batch.lanes());
        for (i, &x) in xs.iter().enumerate() {
            for lane in 0..batch.lanes() {
                assert_eq!(
                    slab[i * batch.lanes() + lane],
                    batch.lane_poly(lane).eval(x),
                    "x index {i}, lane {lane}"
                );
            }
        }
    }

    #[test]
    fn constants_are_the_secrets() {
        let mut rng = SplitMix64::new(4);
        let secrets = [Gf31::new(11), Gf31::new(22)];
        let batch = PolyBatch::<Mersenne31>::random_with_constants(&secrets, 2, &mut rng);
        assert_eq!(batch.constants(), &secrets);
        let mut at_zero = [Gf31::ZERO; 2];
        batch.eval_at_into(Gf31::ZERO, &mut at_zero);
        assert_eq!(at_zero, secrets);
    }

    #[test]
    fn refill_reuses_capacity() {
        let mut rng = SplitMix64::new(5);
        let mut batch = PolyBatch::<Mersenne31>::zeroed(3, 4);
        let secrets: Vec<Gf31> = (0..4).map(Gf31::new).collect();
        batch.refill_random(&secrets, &mut rng);
        let first = batch.clone();
        batch.refill_random(&secrets, &mut rng);
        assert_ne!(first, batch, "fresh randomness per refill");
        assert_eq!(batch.constants(), &secrets[..]);
        assert_eq!(batch.degree(), 3);
        assert_eq!(batch.lanes(), 4);
    }

    #[test]
    fn degree_zero_batch_is_constant() {
        let mut rng = SplitMix64::new(6);
        let secrets = [Gf31::new(9)];
        let batch = PolyBatch::<Mersenne31>::random_with_constants(&secrets, 0, &mut rng);
        let mut out = [Gf31::ZERO; 1];
        batch.eval_at_into(Gf31::new(1234), &mut out);
        assert_eq!(out[0], Gf31::new(9));
    }

    #[test]
    #[should_panic(expected = "all lanes")]
    fn lane_mismatch_panics() {
        let mut rng = SplitMix64::new(7);
        let batch = PolyBatch::<Mersenne31>::random_with_constants(&[Gf31::new(1)], 1, &mut rng);
        let mut out = [Gf31::ZERO; 2];
        batch.eval_at_into(Gf31::ONE, &mut out);
    }
}
