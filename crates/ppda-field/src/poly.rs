//! Dense polynomials over a prime field.

use core::fmt;

use rand::RngCore;

use crate::element::{Gf, PrimeField};

/// A dense polynomial `c₀ + c₁x + … + c_d x^d` over GF(p).
///
/// Coefficients are stored in ascending-degree order. The representation is
/// kept *normalized*: a trailing zero coefficient is trimmed (except for the
/// zero polynomial, which is the empty coefficient vector).
///
/// In Shamir Secret Sharing the constant coefficient `c₀` is the secret and
/// the remaining `degree` coefficients are uniformly random — see
/// [`Polynomial::random_with_constant`].
///
/// # Example
///
/// ```
/// use ppda_field::{Gf31, Mersenne31, Polynomial};
/// // 3 + 2x + x^2 evaluated at 2 = 3 + 4 + 4 = 11
/// let p = Polynomial::<Mersenne31>::new(vec![Gf31::new(3), Gf31::new(2), Gf31::new(1)]);
/// assert_eq!(p.eval(Gf31::new(2)), Gf31::new(11));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Polynomial<P: PrimeField> {
    coeffs: Vec<Gf<P>>,
}

impl<P: PrimeField> Polynomial<P> {
    /// Build a polynomial from ascending-degree coefficients, trimming
    /// trailing zeros.
    pub fn new(coeffs: Vec<Gf<P>>) -> Self {
        let mut p = Polynomial { coeffs };
        p.normalize();
        p
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: Gf<P>) -> Self {
        Self::new(vec![c])
    }

    /// A uniformly random polynomial with the given constant term and exact
    /// degree bound `degree` (the top coefficient may be zero, giving an
    /// effective lower degree — this matches the SSS privacy requirement,
    /// which needs the *non-constant* coefficients uniform, not a fixed
    /// leading coefficient).
    ///
    /// # Example
    ///
    /// ```
    /// use ppda_field::{Gf31, Mersenne31, Polynomial, SplitMix64};
    /// let mut rng = SplitMix64::new(9);
    /// let p = Polynomial::<Mersenne31>::random_with_constant(Gf31::new(5), 3, &mut rng);
    /// assert_eq!(p.eval(Gf31::ZERO), Gf31::new(5));
    /// assert!(p.degree() <= 3);
    /// ```
    pub fn random_with_constant<R: RngCore + ?Sized>(
        constant: Gf<P>,
        degree: usize,
        rng: &mut R,
    ) -> Self {
        let mut coeffs = Vec::with_capacity(degree + 1);
        coeffs.push(constant);
        for _ in 0..degree {
            coeffs.push(Gf::random(rng));
        }
        Self::new(coeffs)
    }

    /// The degree of the polynomial; the zero polynomial reports degree 0.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// `true` iff this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The coefficients in ascending-degree order (empty for zero).
    pub fn coeffs(&self) -> &[Gf<P>] {
        &self.coeffs
    }

    /// The constant term `c₀` (the SSS secret).
    pub fn constant_term(&self) -> Gf<P> {
        self.coeffs.first().copied().unwrap_or(Gf::ZERO)
    }

    /// Evaluate at `x` by Horner's rule (d multiplications, d additions).
    pub fn eval(&self, x: Gf<P>) -> Gf<P> {
        let mut acc = Gf::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Evaluate at many points; convenience for share generation.
    pub fn eval_many(&self, xs: &[Gf<P>]) -> Vec<Gf<P>> {
        xs.iter().map(|&x| self.eval(x)).collect()
    }

    /// Polynomial addition. The sum of all nodes' share polynomials is the
    /// aggregation polynomial whose constant term is the sum of secrets.
    pub fn add(&self, other: &Self) -> Self {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut coeffs = Vec::with_capacity(n);
        for i in 0..n {
            let a = self.coeffs.get(i).copied().unwrap_or(Gf::ZERO);
            let b = other.coeffs.get(i).copied().unwrap_or(Gf::ZERO);
            coeffs.push(a + b);
        }
        Self::new(coeffs)
    }

    /// Multiply every coefficient by a scalar.
    pub fn scale(&self, s: Gf<P>) -> Self {
        Self::new(self.coeffs.iter().map(|&c| c * s).collect())
    }

    /// Naive polynomial multiplication (O(d²)); used by interpolation and in
    /// tests, never on the protocol hot path.
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut coeffs = vec![Gf::ZERO; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in other.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Self::new(coeffs)
    }

    fn normalize(&mut self) {
        while self.coeffs.last().is_some_and(|c| c.is_zero()) {
            self.coeffs.pop();
        }
    }
}

impl<P: PrimeField> fmt::Debug for Polynomial<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "Polynomial(0)");
        }
        write!(f, "Polynomial(")?;
        for (i, c) in self.coeffs.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            match i {
                0 => write!(f, "{c}")?,
                1 => write!(f, "{c}·x")?,
                _ => write!(f, "{c}·x^{i}")?,
            }
        }
        write!(f, ")")
    }
}

impl<P: PrimeField> Default for Polynomial<P> {
    fn default() -> Self {
        Self::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Gf31, Mersenne31};
    use crate::SplitMix64;

    fn poly(cs: &[u64]) -> Polynomial<Mersenne31> {
        Polynomial::new(cs.iter().map(|&c| Gf31::new(c)).collect())
    }

    #[test]
    fn eval_matches_manual() {
        // 7 + 3x + 5x^2 at x=4: 7 + 12 + 80 = 99
        let p = poly(&[7, 3, 5]);
        assert_eq!(p.eval(Gf31::new(4)), Gf31::new(99));
    }

    #[test]
    fn zero_polynomial() {
        let z = Polynomial::<Mersenne31>::zero();
        assert!(z.is_zero());
        assert_eq!(z.degree(), 0);
        assert_eq!(z.eval(Gf31::new(1234)), Gf31::ZERO);
        assert_eq!(z.constant_term(), Gf31::ZERO);
    }

    #[test]
    fn normalization_trims_trailing_zeros() {
        let p = poly(&[1, 2, 0, 0]);
        assert_eq!(p.degree(), 1);
        assert_eq!(p.coeffs().len(), 2);
        let all_zero = poly(&[0, 0, 0]);
        assert!(all_zero.is_zero());
    }

    #[test]
    fn constant_polynomial() {
        let c = Polynomial::<Mersenne31>::constant(Gf31::new(9));
        assert_eq!(c.degree(), 0);
        assert_eq!(c.eval(Gf31::new(55)), Gf31::new(9));
    }

    #[test]
    fn random_with_constant_pins_secret() {
        let mut rng = SplitMix64::new(11);
        for degree in 0..10 {
            let p =
                Polynomial::<Mersenne31>::random_with_constant(Gf31::new(777), degree, &mut rng);
            assert_eq!(p.constant_term(), Gf31::new(777));
            assert_eq!(p.eval(Gf31::ZERO), Gf31::new(777));
            assert!(p.degree() <= degree);
        }
    }

    #[test]
    fn add_is_pointwise() {
        let a = poly(&[1, 2, 3]);
        let b = poly(&[10, 20]);
        let s = a.add(&b);
        let x = Gf31::new(6);
        assert_eq!(s.eval(x), a.eval(x) + b.eval(x));
        assert_eq!(s.coeffs()[0], Gf31::new(11));
        assert_eq!(s.coeffs()[1], Gf31::new(22));
        assert_eq!(s.coeffs()[2], Gf31::new(3));
    }

    #[test]
    fn add_cancels_to_zero() {
        let a = poly(&[5, 7]);
        let neg = Polynomial::new(a.coeffs().iter().map(|&c| -c).collect());
        assert!(a.add(&neg).is_zero());
    }

    #[test]
    fn scale_matches_eval() {
        let a = poly(&[4, 0, 9]);
        let s = a.scale(Gf31::new(3));
        let x = Gf31::new(2);
        assert_eq!(s.eval(x), a.eval(x) * Gf31::new(3));
    }

    #[test]
    fn mul_matches_eval() {
        let a = poly(&[1, 2]); // 1 + 2x
        let b = poly(&[3, 0, 1]); // 3 + x^2
        let m = a.mul(&b);
        assert_eq!(m.degree(), 3);
        for xv in 0..20u64 {
            let x = Gf31::new(xv);
            assert_eq!(m.eval(x), a.eval(x) * b.eval(x));
        }
    }

    #[test]
    fn mul_by_zero_is_zero() {
        let a = poly(&[1, 2, 3]);
        assert!(a.mul(&Polynomial::zero()).is_zero());
        assert!(Polynomial::<Mersenne31>::zero().mul(&a).is_zero());
    }

    #[test]
    fn eval_many_matches_eval() {
        let p = poly(&[9, 8, 7]);
        let xs: Vec<Gf31> = (1..=5).map(Gf31::new).collect();
        let ys = p.eval_many(&xs);
        for (x, y) in xs.iter().zip(&ys) {
            assert_eq!(p.eval(*x), *y);
        }
    }

    #[test]
    fn debug_rendering() {
        assert_eq!(
            format!("{:?}", poly(&[3, 2, 1])),
            "Polynomial(3 + 2·x + 1·x^2)"
        );
        assert_eq!(
            format!("{:?}", Polynomial::<Mersenne31>::zero()),
            "Polynomial(0)"
        );
    }

    #[test]
    fn sum_of_polynomials_aggregates_secrets() {
        // The algebraic heart of the paper: sum of share polynomials has the
        // sum of secrets as its constant term.
        let mut rng = SplitMix64::new(21);
        let secrets = [15u64, 27, 99, 4];
        let polys: Vec<_> = secrets
            .iter()
            .map(|&s| Polynomial::<Mersenne31>::random_with_constant(Gf31::new(s), 3, &mut rng))
            .collect();
        let sum_poly = polys.iter().fold(Polynomial::zero(), |acc, p| acc.add(p));
        assert_eq!(
            sum_poly.constant_term(),
            Gf31::new(secrets.iter().sum::<u64>())
        );
    }
}
