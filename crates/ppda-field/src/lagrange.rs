//! Lagrange interpolation over a prime field.
//!
//! SSS reconstruction only ever needs the value at x = 0, for which
//! [`interpolate_at_zero`] computes the weighted sum
//! `Σ yᵢ · Πⱼ≠ᵢ xⱼ/(xⱼ−xᵢ)` directly — O(m²) multiplications and a single
//! batched inversion. [`interpolate`] recovers the full coefficient vector
//! (used in tests and in the adversary analysis).

use crate::element::{Gf, PrimeField};
use crate::error::FieldError;
use crate::poly::Polynomial;

/// Validate interpolation abscissas: non-empty, non-zero, pairwise distinct.
fn validate_xs<P: PrimeField>(xs: &[Gf<P>]) -> Result<(), FieldError> {
    validate_xs_allow_zero(xs)?;
    if xs.iter().any(|x| x.is_zero()) {
        return Err(FieldError::ZeroAbscissa);
    }
    Ok(())
}

/// Validate abscissas for full interpolation, where x = 0 is a legitimate
/// constraint point (e.g. pinning a candidate secret): non-empty, distinct.
fn validate_xs_allow_zero<P: PrimeField>(xs: &[Gf<P>]) -> Result<(), FieldError> {
    if xs.is_empty() {
        return Err(FieldError::EmptyInterpolation);
    }
    for (i, &xi) in xs.iter().enumerate() {
        for &xj in &xs[..i] {
            if xi == xj {
                return Err(FieldError::DuplicateX { x: xi.value() });
            }
        }
    }
    Ok(())
}

/// Invert a slice of non-zero elements with Montgomery's batch trick:
/// one field inversion plus 3(m−1) multiplications.
///
/// # Panics
///
/// Panics if any input is zero (callers validate first).
pub fn batch_invert<P: PrimeField>(values: &[Gf<P>]) -> Vec<Gf<P>> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut prefix = Vec::with_capacity(values.len());
    let mut acc = Gf::ONE;
    for &v in values {
        assert!(!v.is_zero(), "batch_invert requires non-zero inputs");
        prefix.push(acc);
        acc *= v;
    }
    let mut inv_acc = acc
        .inverse()
        .expect("product of non-zero elements is non-zero");
    let mut out = vec![Gf::ZERO; values.len()];
    for i in (0..values.len()).rev() {
        out[i] = prefix[i] * inv_acc;
        inv_acc *= values[i];
    }
    out
}

/// The Lagrange basis weights at x = 0: `wᵢ = Πⱼ≠ᵢ xⱼ / (xⱼ − xᵢ)`.
///
/// Reconstruction is then `secret = Σ wᵢ·yᵢ`. Precomputing the weights lets
/// a node reconstruct many aggregates over the same share-holder set (e.g.
/// one per sensing epoch) with just m multiplications each.
///
/// # Errors
///
/// Returns [`FieldError`] if `xs` is empty, contains zero, or has duplicates.
pub fn basis_at_zero<P: PrimeField>(xs: &[Gf<P>]) -> Result<Vec<Gf<P>>, FieldError> {
    validate_xs(xs)?;
    let m = xs.len();
    // numerator_i = Π_{j≠i} x_j ; denominator_i = Π_{j≠i} (x_j − x_i)
    let mut denominators = Vec::with_capacity(m);
    let mut numerators = Vec::with_capacity(m);
    for i in 0..m {
        let mut num = Gf::ONE;
        let mut den = Gf::ONE;
        for j in 0..m {
            if i == j {
                continue;
            }
            num *= xs[j];
            den *= xs[j] - xs[i];
        }
        numerators.push(num);
        denominators.push(den);
    }
    let inv_dens = batch_invert(&denominators);
    Ok(numerators
        .into_iter()
        .zip(inv_dens)
        .map(|(n, d)| n * d)
        .collect())
}

/// Interpolate the unique degree-(m−1) polynomial through `points` and
/// evaluate it at x = 0 (SSS secret reconstruction).
///
/// # Errors
///
/// Returns [`FieldError`] if the points are empty, share an abscissa, or use
/// x = 0.
///
/// # Example
///
/// ```
/// use ppda_field::{lagrange, Gf31};
/// // y = 10 + 3x through x = 1, 2
/// let pts = [(Gf31::new(1), Gf31::new(13)), (Gf31::new(2), Gf31::new(16))];
/// assert_eq!(lagrange::interpolate_at_zero(&pts)?, Gf31::new(10));
/// # Ok::<(), ppda_field::FieldError>(())
/// ```
pub fn interpolate_at_zero<P: PrimeField>(points: &[(Gf<P>, Gf<P>)]) -> Result<Gf<P>, FieldError> {
    let xs: Vec<Gf<P>> = points.iter().map(|&(x, _)| x).collect();
    let weights = basis_at_zero(&xs)?;
    Ok(points.iter().zip(weights).map(|(&(_, y), w)| y * w).sum())
}

/// Interpolate the full coefficient vector of the unique degree-(m−1)
/// polynomial through `points`.
///
/// Unlike [`interpolate_at_zero`], a point *at* x = 0 is allowed here —
/// the adversary analysis pins candidate secrets that way.
///
/// O(m²); fine for the small m (≤ 46) used by the protocols.
///
/// # Errors
///
/// [`FieldError`] if the points are empty or share an abscissa.
pub fn interpolate<P: PrimeField>(points: &[(Gf<P>, Gf<P>)]) -> Result<Polynomial<P>, FieldError> {
    let xs: Vec<Gf<P>> = points.iter().map(|&(x, _)| x).collect();
    validate_xs_allow_zero(&xs)?;
    let mut acc = Polynomial::zero();
    for (i, &(xi, yi)) in points.iter().enumerate() {
        // basis_i(x) = Π_{j≠i} (x − x_j) / (x_i − x_j)
        let mut basis = Polynomial::constant(Gf::ONE);
        let mut denom = Gf::ONE;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            basis = basis.mul(&Polynomial::new(vec![-xj, Gf::ONE]));
            denom *= xi - xj;
        }
        let coeff = yi
            * denom
                .inverse()
                .expect("distinct abscissas give non-zero denominator");
        acc = acc.add(&basis.scale(coeff));
    }
    Ok(acc)
}

/// Check whether `points` are consistent with a single polynomial of degree
/// at most `degree` (used to validate received sum shares before
/// reconstruction, and by the fault-tolerance logic to discard corrupted
/// shares).
///
/// # Errors
///
/// Returns [`FieldError::NotEnoughPoints`] when fewer than `degree + 1`
/// points are supplied, plus the usual abscissa validation errors.
pub fn consistent_with_degree<P: PrimeField>(
    points: &[(Gf<P>, Gf<P>)],
    degree: usize,
) -> Result<bool, FieldError> {
    if points.len() < degree + 1 {
        return Err(FieldError::NotEnoughPoints {
            needed: degree + 1,
            got: points.len(),
        });
    }
    let poly = interpolate(&points[..degree + 1])?;
    // Validate the remaining points too (catches duplicates across the split).
    let xs: Vec<Gf<P>> = points.iter().map(|&(x, _)| x).collect();
    validate_xs_allow_zero(&xs)?;
    Ok(points[degree + 1..].iter().all(|&(x, y)| poly.eval(x) == y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Gf31, Mersenne31};
    use crate::SplitMix64;

    fn pts(raw: &[(u64, u64)]) -> Vec<(Gf31, Gf31)> {
        raw.iter()
            .map(|&(x, y)| (Gf31::new(x), Gf31::new(y)))
            .collect()
    }

    #[test]
    fn reconstruct_linear() {
        // y = 10 + 3x
        let points = pts(&[(1, 13), (2, 16)]);
        assert_eq!(interpolate_at_zero(&points).unwrap(), Gf31::new(10));
    }

    #[test]
    fn reconstruct_from_any_subset() {
        let mut rng = SplitMix64::new(17);
        let secret = Gf31::new(123456);
        let poly = Polynomial::<Mersenne31>::random_with_constant(secret, 4, &mut rng);
        let all: Vec<(Gf31, Gf31)> = (1u64..=12)
            .map(|x| (Gf31::new(x), poly.eval(Gf31::new(x))))
            .collect();
        // any 5 points reconstruct
        for start in 0..7 {
            let subset = &all[start..start + 5];
            assert_eq!(interpolate_at_zero(subset).unwrap(), secret);
        }
        // non-contiguous subset
        let subset = [all[0], all[3], all[5], all[8], all[11]];
        assert_eq!(interpolate_at_zero(&subset).unwrap(), secret);
    }

    #[test]
    fn too_few_points_give_wrong_secret_not_error() {
        // k points for a degree-k polynomial is information-theoretically
        // insufficient — interpolation succeeds but yields an unrelated value.
        let mut rng = SplitMix64::new(23);
        let secret = Gf31::new(999);
        let poly = Polynomial::<Mersenne31>::random_with_constant(secret, 3, &mut rng);
        let three: Vec<(Gf31, Gf31)> = (1u64..=3)
            .map(|x| (Gf31::new(x), poly.eval(Gf31::new(x))))
            .collect();
        // With overwhelming probability the degree-2 fit misses the secret.
        assert_ne!(interpolate_at_zero(&three).unwrap(), secret);
    }

    #[test]
    fn rejects_empty() {
        let empty: Vec<(Gf31, Gf31)> = Vec::new();
        assert_eq!(
            interpolate_at_zero(&empty),
            Err(FieldError::EmptyInterpolation)
        );
    }

    #[test]
    fn rejects_duplicate_x() {
        let points = pts(&[(1, 5), (1, 6)]);
        assert_eq!(
            interpolate_at_zero(&points),
            Err(FieldError::DuplicateX { x: 1 })
        );
    }

    #[test]
    fn rejects_zero_abscissa() {
        let points = pts(&[(0, 5), (1, 6)]);
        assert_eq!(interpolate_at_zero(&points), Err(FieldError::ZeroAbscissa));
    }

    #[test]
    fn full_interpolation_recovers_coefficients() {
        let mut rng = SplitMix64::new(31);
        let poly = Polynomial::<Mersenne31>::random_with_constant(Gf31::new(42), 5, &mut rng);
        let points: Vec<(Gf31, Gf31)> = (1u64..=6)
            .map(|x| (Gf31::new(x), poly.eval(Gf31::new(x))))
            .collect();
        let rec = interpolate(&points).unwrap();
        assert_eq!(rec, poly);
    }

    #[test]
    fn single_point_interpolation_is_constant() {
        let points = pts(&[(7, 99)]);
        let poly = interpolate(&points).unwrap();
        assert_eq!(poly.degree(), 0);
        assert_eq!(poly.constant_term(), Gf31::new(99));
        assert_eq!(interpolate_at_zero(&points).unwrap(), Gf31::new(99));
    }

    #[test]
    fn basis_weights_sum_property() {
        // Interpolating the constant-1 polynomial must give weights that sum
        // to 1 at x = 0.
        let xs: Vec<Gf31> = (1u64..=7).map(Gf31::new).collect();
        let w = basis_at_zero(&xs).unwrap();
        assert_eq!(w.iter().copied().sum::<Gf31>(), Gf31::ONE);
    }

    #[test]
    fn batch_invert_matches_individual() {
        let mut rng = SplitMix64::new(41);
        let values: Vec<Gf31> = (0..50).map(|_| Gf31::random_nonzero(&mut rng)).collect();
        let batch = batch_invert(&values);
        for (v, inv) in values.iter().zip(&batch) {
            assert_eq!(v.inverse().unwrap(), *inv);
        }
    }

    #[test]
    fn batch_invert_empty() {
        let values: Vec<Gf31> = Vec::new();
        assert!(batch_invert(&values).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn batch_invert_panics_on_zero() {
        let _ = batch_invert(&[Gf31::ONE, Gf31::ZERO]);
    }

    #[test]
    fn consistency_check_accepts_honest_points() {
        let mut rng = SplitMix64::new(53);
        let poly = Polynomial::<Mersenne31>::random_with_constant(Gf31::new(5), 3, &mut rng);
        let points: Vec<(Gf31, Gf31)> = (1u64..=10)
            .map(|x| (Gf31::new(x), poly.eval(Gf31::new(x))))
            .collect();
        assert!(consistent_with_degree(&points, 3).unwrap());
    }

    #[test]
    fn consistency_check_rejects_tampered_point() {
        let mut rng = SplitMix64::new(59);
        let poly = Polynomial::<Mersenne31>::random_with_constant(Gf31::new(5), 3, &mut rng);
        let mut points: Vec<(Gf31, Gf31)> = (1u64..=10)
            .map(|x| (Gf31::new(x), poly.eval(Gf31::new(x))))
            .collect();
        points[7].1 += Gf31::ONE;
        assert!(!consistent_with_degree(&points, 3).unwrap());
    }

    #[test]
    fn consistency_check_needs_enough_points() {
        let points = pts(&[(1, 1), (2, 2)]);
        assert_eq!(
            consistent_with_degree(&points, 3),
            Err(FieldError::NotEnoughPoints { needed: 4, got: 2 })
        );
    }
}
