//! A tiny deterministic RNG for tests, examples and doc-tests.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64: a fast, well-distributed 64-bit generator.
///
/// Used throughout the workspace where a *stable*, dependency-light stream
/// is needed (e.g. deriving per-node RNG seeds). Not cryptographically
/// secure — protocol share randomness uses the CTR-DRBG from `ppda-crypto`.
///
/// # Example
///
/// ```
/// use rand::RngCore;
/// let mut a = ppda_field::SplitMix64::new(1);
/// let mut b = ppda_field::SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Distinct seeds give independent-looking
    /// streams; the all-zero seed is fine.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Advance the state and return the next 64-bit output.
    ///
    /// Deliberately named after the canonical SplitMix64 routine; the
    /// iterator protocol (fallible, item-typed) is the wrong shape for an
    /// infinite bit stream.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SplitMix64::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        SplitMix64::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn known_first_output_for_zero_seed() {
        // Reference value of splitmix64(0) from the canonical C implementation.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next(), 0xE220A8397B1DCDAF);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next(), b.next());
    }

    #[test]
    fn fill_bytes_partial_chunks() {
        let mut rng = SplitMix64::new(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // The same seed reproduces the same bytes.
        let mut rng2 = SplitMix64::new(7);
        let mut buf2 = [0u8; 13];
        rng2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn seedable_from_u64_matches_new() {
        let mut a = SplitMix64::seed_from_u64(123);
        let mut b = SplitMix64::new(123);
        assert_eq!(a.next(), b.next());
    }
}
