//! Field elements over fixed Mersenne primes.

use core::fmt;
use core::hash::{Hash, Hasher};
use core::iter::{Product, Sum};
use core::marker::PhantomData;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::RngCore;

/// A prime modulus usable as the characteristic of a [`Gf`] field.
///
/// This trait is implemented by zero-sized marker types ([`Mersenne31`],
/// [`Mersenne61`]); it is not meant to be implemented outside this crate,
/// although nothing prevents it for experimentation with other primes below
/// 2⁶². All arithmetic goes through [`PrimeField::reduce`], so a non-Mersenne
/// prime only costs an extra `%`.
pub trait PrimeField:
    'static + Copy + Clone + fmt::Debug + Eq + PartialEq + Send + Sync + Default
{
    /// The prime modulus. Must satisfy `MODULUS < 2^62` so that sums of two
    /// reduced values never overflow `u64` and products fit in `u128`.
    const MODULUS: u64;
    /// Short human-readable field name, e.g. `"M31"`.
    const NAME: &'static str;
    /// Number of bytes needed to encode one element on the wire.
    const ENCODED_LEN: usize;

    /// The packed backend the lane hot paths use for this field, selected
    /// at build time (see [`crate::packed`]). Experimental fields can
    /// simply name the generic portable lanes:
    /// `type Packed = ppda_field::packed::PortableGf<Self>;`.
    type Packed: crate::packed::PackedField<Self>;

    /// Reduce an arbitrary 128-bit value into `[0, MODULUS)`.
    #[inline]
    fn reduce(x: u128) -> u64 {
        (x % Self::MODULUS as u128) as u64
    }

    /// Reduce a 64-bit value into `[0, MODULUS)`.
    #[inline]
    fn reduce64(x: u64) -> u64 {
        x % Self::MODULUS
    }

    /// Multiply two *reduced* residues and reduce the product — the
    /// branch-free kernel the packed lanes build on. The default widens to
    /// `u128`; the Mersenne fields override it with fold-based reductions
    /// that stay in (or quickly return to) `u64` so the compiler can keep
    /// lane loops in vector registers.
    #[inline]
    fn mul_reduced(a: u64, b: u64) -> u64 {
        Self::reduce(a as u128 * b as u128)
    }
}

/// Marker for the Mersenne prime field with p = 2³¹ − 1.
#[derive(Copy, Clone, Debug, Default, Eq, PartialEq)]
pub struct Mersenne31;

/// Marker for the Mersenne prime field with p = 2⁶¹ − 1.
#[derive(Copy, Clone, Debug, Default, Eq, PartialEq)]
pub struct Mersenne61;

impl PrimeField for Mersenne31 {
    const MODULUS: u64 = (1 << 31) - 1;
    const NAME: &'static str = "M31";
    const ENCODED_LEN: usize = 4;

    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        not(feature = "force-portable")
    ))]
    type Packed = crate::packed::Avx2Gf31;
    #[cfg(not(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        not(feature = "force-portable")
    )))]
    type Packed = crate::packed::PortableGf<Mersenne31>;

    #[inline]
    fn mul_reduced(a: u64, b: u64) -> u64 {
        const P: u64 = (1 << 31) - 1;
        // Both operands reduced (< 2^31): the product fits u64 exactly.
        let prod = a * b;
        // Two folds of 2^31 ≡ 1 (mod p): < 2^62 → < 2^32 → ≤ p + 1, then
        // a branchless conditional subtract (the wrapping `min` idiom).
        let fold1 = (prod & P) + (prod >> 31);
        let fold2 = (fold1 & P) + (fold1 >> 31);
        fold2.min(fold2.wrapping_sub(P))
    }

    #[inline]
    fn reduce(x: u128) -> u64 {
        // Fold using 2^31 ≡ 1 (mod p). Four folds bring any u128 below 2p:
        // 2^128 → <2^98 → <2^68 → <2^38 → <2^31 + 2^7.
        const P: u128 = (1 << 31) - 1;
        let x = (x & P) + (x >> 31);
        let x = (x & P) + (x >> 31);
        let x = (x & P) + (x >> 31);
        let x = (x & P) + (x >> 31);
        let x = x as u64;
        if x >= Self::MODULUS {
            x - Self::MODULUS
        } else {
            x
        }
    }

    #[inline]
    fn reduce64(x: u64) -> u64 {
        const P: u64 = (1 << 31) - 1;
        let x = (x & P) + (x >> 31);
        let x = (x & P) + (x >> 31);
        if x >= P {
            x - P
        } else {
            x
        }
    }
}

impl PrimeField for Mersenne61 {
    const MODULUS: u64 = (1 << 61) - 1;
    const NAME: &'static str = "M61";
    const ENCODED_LEN: usize = 8;

    // 61-bit products need 122 bits, out of reach of AVX2's 32×32
    // multiplier — the branchless portable lanes are the packed backend on
    // every target.
    type Packed = crate::packed::PortableGf<Mersenne61>;

    #[inline]
    fn mul_reduced(a: u64, b: u64) -> u64 {
        const P: u64 = (1 << 61) - 1;
        let prod = a as u128 * b as u128; // < 2^122
                                          // One 128-bit fold brings it under 2^62, one 64-bit fold under
                                          // p + 2, then the branchless conditional subtract.
        let fold1 = (prod as u64 & P) + ((prod >> 61) as u64);
        let fold2 = (fold1 & P) + (fold1 >> 61);
        fold2.min(fold2.wrapping_sub(P))
    }

    #[inline]
    fn reduce(x: u128) -> u64 {
        const P: u128 = (1 << 61) - 1;
        let x = (x & P) + (x >> 61);
        let x = (x & P) + (x >> 61);
        let x = x as u64;
        if x >= Self::MODULUS {
            x - Self::MODULUS
        } else {
            x
        }
    }

    #[inline]
    fn reduce64(x: u64) -> u64 {
        const P: u64 = (1 << 61) - 1;
        let x = (x & P) + (x >> 61);
        if x >= P {
            x - P
        } else {
            x
        }
    }
}

/// An element of the prime field GF(p) selected by the marker `P`.
///
/// The value is kept reduced (`0 <= value < P::MODULUS`) at all times, which
/// makes `Eq`/`Hash` structural. All ring operations are implemented via the
/// standard operator traits; division panics on a zero divisor (use
/// [`Gf::inverse`] for a checked variant).
///
/// # Example
///
/// ```
/// use ppda_field::Gf31;
/// let a = Gf31::new(5);
/// let b = Gf31::new(7);
/// assert_eq!((a * b) / b, a);
/// assert_eq!(a - a, Gf31::ZERO);
/// ```
// repr(transparent) lets the packed backends load/store slabs of elements
// directly as their u64 residues.
#[repr(transparent)]
pub struct Gf<P: PrimeField>(u64, PhantomData<P>);

/// Field element over [`Mersenne31`].
pub type Gf31 = Gf<Mersenne31>;
/// Field element over [`Mersenne61`].
pub type Gf61 = Gf<Mersenne61>;

impl<P: PrimeField> Gf<P> {
    /// The additive identity.
    pub const ZERO: Self = Gf(0, PhantomData);
    /// The multiplicative identity.
    pub const ONE: Self = Gf(1, PhantomData);

    /// Construct an element from an integer, reducing mod p.
    #[inline]
    pub fn new(v: u64) -> Self {
        Gf(P::reduce64(v), PhantomData)
    }

    /// Wrap an already-reduced residue without the reduction pass (packed
    /// backends store lanes they have proven canonical).
    ///
    /// Callers must guarantee `v < P::MODULUS`.
    #[inline]
    pub(crate) fn new_unchecked(v: u64) -> Self {
        debug_assert!(v < P::MODULUS, "residue must be canonical");
        Gf(v, PhantomData)
    }

    /// The canonical representative in `[0, p)`.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }

    /// The field modulus p.
    #[inline]
    pub fn modulus() -> u64 {
        P::MODULUS
    }

    /// `true` iff this is the additive identity.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Modular exponentiation by square-and-multiply.
    ///
    /// # Example
    ///
    /// ```
    /// use ppda_field::Gf31;
    /// assert_eq!(Gf31::new(2).pow(10), Gf31::new(1024));
    /// ```
    pub fn pow(self, mut exp: u64) -> Self {
        let mut base = self;
        let mut acc = Self::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base *= base;
            exp >>= 1;
        }
        acc
    }

    /// The multiplicative inverse, or `None` for zero.
    ///
    /// Uses Fermat's little theorem (`a^(p-2)`), which is branch-free and
    /// fast for the fixed Mersenne moduli used here.
    ///
    /// # Example
    ///
    /// ```
    /// use ppda_field::Gf31;
    /// let a = Gf31::new(12345);
    /// assert_eq!(a * a.inverse().unwrap(), Gf31::ONE);
    /// assert!(Gf31::ZERO.inverse().is_none());
    /// ```
    pub fn inverse(self) -> Option<Self> {
        if self.is_zero() {
            None
        } else {
            Some(self.pow(P::MODULUS - 2))
        }
    }

    /// Sample a uniformly random field element.
    ///
    /// Rejection sampling over the minimal bit width keeps the distribution
    /// exactly uniform (no modulo bias).
    pub fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let bits = 64 - (P::MODULUS - 1).leading_zeros();
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        loop {
            let candidate = rng.next_u64() & mask;
            if candidate < P::MODULUS {
                return Gf(candidate, PhantomData);
            }
        }
    }

    /// Sample a uniformly random *non-zero* field element.
    pub fn random_nonzero<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        loop {
            let candidate = Self::random(rng);
            if !candidate.is_zero() {
                return candidate;
            }
        }
    }

    /// Encode into `P::ENCODED_LEN` little-endian bytes, without a heap
    /// allocation (the returned [`GfBytes`] derefs to the byte slice).
    pub fn to_bytes(self) -> GfBytes {
        GfBytes {
            buf: self.0.to_le_bytes(),
            len: P::ENCODED_LEN as u8,
        }
    }

    /// Write the `P::ENCODED_LEN`-byte little-endian encoding into `out`.
    ///
    /// The buffer-oriented twin of [`Gf::to_bytes`] for wire paths that
    /// serialize many elements into one frame.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `P::ENCODED_LEN` bytes.
    #[inline]
    pub fn write_bytes(self, out: &mut [u8]) {
        out[..P::ENCODED_LEN].copy_from_slice(&self.0.to_le_bytes()[..P::ENCODED_LEN]);
    }

    /// Decode from little-endian bytes produced by [`Gf::to_bytes`].
    ///
    /// Returns `None` if `bytes` is shorter than `P::ENCODED_LEN` or decodes
    /// to a non-canonical (≥ p) value.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < P::ENCODED_LEN {
            return None;
        }
        let mut raw = [0u8; 8];
        raw[..P::ENCODED_LEN].copy_from_slice(&bytes[..P::ENCODED_LEN]);
        let v = u64::from_le_bytes(raw);
        if v >= P::MODULUS {
            None
        } else {
            Some(Gf(v, PhantomData))
        }
    }
}

/// The stack-allocated wire encoding of one [`Gf`] element: up to 8
/// little-endian bytes, of which the first `len` are significant.
///
/// Returned by [`Gf::to_bytes`]; derefs to `&[u8]` so existing slice-based
/// callers work unchanged, minus the per-element heap `Vec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GfBytes {
    buf: [u8; 8],
    len: u8,
}

impl core::ops::Deref for GfBytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.buf[..self.len as usize]
    }
}

impl AsRef<[u8]> for GfBytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl<P: PrimeField> Copy for Gf<P> {}
impl<P: PrimeField> Clone for Gf<P> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<P: PrimeField> Default for Gf<P> {
    fn default() -> Self {
        Self::ZERO
    }
}
impl<P: PrimeField> PartialEq for Gf<P> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl<P: PrimeField> Eq for Gf<P> {}
impl<P: PrimeField> Hash for Gf<P> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}
impl<P: PrimeField> PartialOrd for Gf<P> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P: PrimeField> Ord for Gf<P> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl<P: PrimeField> fmt::Debug for Gf<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", P::NAME, self.0)
    }
}

impl<P: PrimeField> fmt::Display for Gf<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl<P: PrimeField> From<u64> for Gf<P> {
    fn from(v: u64) -> Self {
        Self::new(v)
    }
}

impl<P: PrimeField> From<u32> for Gf<P> {
    fn from(v: u32) -> Self {
        Self::new(v as u64)
    }
}

impl<P: PrimeField> Add for Gf<P> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        let sum = self.0 + rhs.0; // both < 2^62, no overflow
        Gf(
            if sum >= P::MODULUS {
                sum - P::MODULUS
            } else {
                sum
            },
            PhantomData,
        )
    }
}

impl<P: PrimeField> Sub for Gf<P> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        let diff = self.0 + P::MODULUS - rhs.0;
        Gf(
            if diff >= P::MODULUS {
                diff - P::MODULUS
            } else {
                diff
            },
            PhantomData,
        )
    }
}

impl<P: PrimeField> Mul for Gf<P> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Gf(P::reduce(self.0 as u128 * rhs.0 as u128), PhantomData)
    }
}

impl<P: PrimeField> Div for Gf<P> {
    type Output = Self;
    /// # Panics
    ///
    /// Panics if `rhs` is zero; use [`Gf::inverse`] for a checked division.
    // Field division IS multiplication by the inverse.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self * rhs.inverse().expect("division by zero field element")
    }
}

impl<P: PrimeField> Neg for Gf<P> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            Gf(P::MODULUS - self.0, PhantomData)
        }
    }
}

impl<P: PrimeField> AddAssign for Gf<P> {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl<P: PrimeField> SubAssign for Gf<P> {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl<P: PrimeField> MulAssign for Gf<P> {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}
impl<P: PrimeField> DivAssign for Gf<P> {
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl<P: PrimeField> Sum for Gf<P> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |acc, x| acc + x)
    }
}

impl<P: PrimeField> Product for Gf<P> {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, |acc, x| acc * x)
    }
}

#[cfg(feature = "serde")]
impl<P: PrimeField> serde::Serialize for Gf<P> {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(self.0)
    }
}

#[cfg(feature = "serde")]
impl<'de, P: PrimeField> serde::Deserialize<'de> for Gf<P> {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = u64::deserialize(deserializer)?;
        Ok(Self::new(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn constants() {
        assert_eq!(Gf31::ZERO.value(), 0);
        assert_eq!(Gf31::ONE.value(), 1);
        assert_eq!(Gf31::modulus(), 2147483647);
        assert_eq!(Gf61::modulus(), 2305843009213693951);
    }

    #[test]
    fn new_reduces() {
        assert_eq!(Gf31::new(Gf31::modulus()).value(), 0);
        assert_eq!(Gf31::new(Gf31::modulus() + 5).value(), 5);
        assert_eq!(Gf31::new(u64::MAX).value(), Mersenne31::reduce64(u64::MAX));
        assert_eq!(Gf61::new(Gf61::modulus() + 1).value(), 1);
    }

    #[test]
    fn add_wraps() {
        let p = Gf31::modulus();
        assert_eq!((Gf31::new(p - 1) + Gf31::new(1)).value(), 0);
        assert_eq!((Gf31::new(p - 1) + Gf31::new(5)).value(), 4);
    }

    #[test]
    fn sub_wraps() {
        assert_eq!((Gf31::new(3) - Gf31::new(5)).value(), Gf31::modulus() - 2);
        assert_eq!(Gf31::new(7) - Gf31::new(7), Gf31::ZERO);
    }

    #[test]
    fn mul_matches_u128_reference() {
        let mut rng = SplitMix64::new(0xfee1);
        for _ in 0..2000 {
            let a = Gf31::random(&mut rng);
            let b = Gf31::random(&mut rng);
            let expect = (a.value() as u128 * b.value() as u128 % Gf31::modulus() as u128) as u64;
            assert_eq!((a * b).value(), expect);
        }
    }

    #[test]
    fn mul_matches_u128_reference_m61() {
        let mut rng = SplitMix64::new(0xfee2);
        for _ in 0..2000 {
            let a = Gf61::random(&mut rng);
            let b = Gf61::random(&mut rng);
            let expect = (a.value() as u128 * b.value() as u128 % Gf61::modulus() as u128) as u64;
            assert_eq!((a * b).value(), expect);
        }
    }

    #[test]
    fn mul_reduced_matches_u128_reference() {
        let mut rng = SplitMix64::new(0xfee3);
        for _ in 0..2000 {
            let a = Gf31::random(&mut rng);
            let b = Gf31::random(&mut rng);
            let expect = (a.value() as u128 * b.value() as u128 % Gf31::modulus() as u128) as u64;
            assert_eq!(Mersenne31::mul_reduced(a.value(), b.value()), expect);
            let c = Gf61::random(&mut rng);
            let d = Gf61::random(&mut rng);
            let expect = (c.value() as u128 * d.value() as u128 % Gf61::modulus() as u128) as u64;
            assert_eq!(Mersenne61::mul_reduced(c.value(), d.value()), expect);
        }
        // Worst case: (p−1)² for both fields.
        let p31 = Gf31::modulus();
        assert_eq!(
            Mersenne31::mul_reduced(p31 - 1, p31 - 1),
            ((p31 - 1) as u128 * (p31 - 1) as u128 % p31 as u128) as u64
        );
        let p61 = Gf61::modulus();
        assert_eq!(
            Mersenne61::mul_reduced(p61 - 1, p61 - 1),
            ((p61 - 1) as u128 * (p61 - 1) as u128 % p61 as u128) as u64
        );
    }

    #[test]
    fn neg_is_additive_inverse() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..100 {
            let a = Gf31::random(&mut rng);
            assert_eq!(a + (-a), Gf31::ZERO);
        }
        assert_eq!(-Gf31::ZERO, Gf31::ZERO);
    }

    #[test]
    fn inverse_round_trips() {
        let mut rng = SplitMix64::new(4);
        for _ in 0..200 {
            let a = Gf31::random_nonzero(&mut rng);
            assert_eq!(a * a.inverse().unwrap(), Gf31::ONE);
            let b = Gf61::random_nonzero(&mut rng);
            assert_eq!(b * b.inverse().unwrap(), Gf61::ONE);
        }
    }

    #[test]
    fn inverse_of_zero_is_none() {
        assert!(Gf31::ZERO.inverse().is_none());
        assert!(Gf61::ZERO.inverse().is_none());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Gf31::ONE / Gf31::ZERO;
    }

    #[test]
    fn pow_edge_cases() {
        let a = Gf31::new(123456);
        assert_eq!(a.pow(0), Gf31::ONE);
        assert_eq!(a.pow(1), a);
        assert_eq!(a.pow(2), a * a);
        // Fermat: a^(p-1) = 1
        assert_eq!(a.pow(Gf31::modulus() - 1), Gf31::ONE);
    }

    #[test]
    fn random_is_in_range_and_varied() {
        let mut rng = SplitMix64::new(99);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let a = Gf31::random(&mut rng);
            assert!(a.value() < Gf31::modulus());
            seen.insert(a.value());
        }
        assert!(seen.len() > 990, "uniform sampling should rarely collide");
    }

    #[test]
    fn byte_round_trip() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..100 {
            let a = Gf31::random(&mut rng);
            assert_eq!(Gf31::from_bytes(&a.to_bytes()), Some(a));
            let b = Gf61::random(&mut rng);
            assert_eq!(Gf61::from_bytes(&b.to_bytes()), Some(b));
        }
    }

    #[test]
    fn write_bytes_matches_to_bytes() {
        let mut rng = SplitMix64::new(6);
        for _ in 0..100 {
            let a = Gf31::random(&mut rng);
            let mut buf = [0xFFu8; 8];
            a.write_bytes(&mut buf);
            assert_eq!(&buf[..4], &*a.to_bytes());
            assert_eq!(buf[4..], [0xFF; 4], "only ENCODED_LEN bytes written");
            let b = Gf61::random(&mut rng);
            let mut buf = [0u8; 8];
            b.write_bytes(&mut buf);
            assert_eq!(&buf[..], &*b.to_bytes());
        }
        assert_eq!(Gf31::new(7).to_bytes().len(), 4);
        assert_eq!(Gf61::new(7).to_bytes().len(), 8);
    }

    #[test]
    fn from_bytes_rejects_short_and_noncanonical() {
        assert_eq!(Gf31::from_bytes(&[1, 2]), None);
        // 2^31 - 1 = modulus itself is non-canonical
        let p = Gf31::modulus().to_le_bytes();
        assert_eq!(Gf31::from_bytes(&p[..4]), None);
    }

    #[test]
    fn sum_and_product_iterators() {
        let xs = [Gf31::new(1), Gf31::new(2), Gf31::new(3)];
        assert_eq!(xs.iter().copied().sum::<Gf31>(), Gf31::new(6));
        assert_eq!(xs.iter().copied().product::<Gf31>(), Gf31::new(6));
        let empty: [Gf31; 0] = [];
        assert_eq!(empty.iter().copied().sum::<Gf31>(), Gf31::ZERO);
        assert_eq!(empty.iter().copied().product::<Gf31>(), Gf31::ONE);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Gf31::new(42)), "42");
        assert_eq!(format!("{:?}", Gf31::new(42)), "M31(42)");
        assert_eq!(format!("{:?}", Gf61::new(7)), "M61(7)");
    }

    #[test]
    fn reduce_full_u128_range() {
        // Worst-case inputs for the folding reducers.
        assert_eq!(
            Mersenne31::reduce(u128::MAX),
            (u128::MAX % ((1u128 << 31) - 1)) as u64
        );
        assert_eq!(
            Mersenne61::reduce(u128::MAX),
            (u128::MAX % ((1u128 << 61) - 1)) as u64
        );
        assert_eq!(Mersenne31::reduce(0), 0);
        assert_eq!(Mersenne61::reduce(0), 0);
    }
}
