//! Pluggable SIMD-packed field arithmetic for the lane hot paths.
//!
//! The batched protocols lay share data out structure-of-arrays precisely so
//! that lanes can map onto hardware vector lanes. This module provides the
//! [`PackedField`] abstraction over "`WIDTH` field elements at once", two
//! implementations, and the two lane-loop shapes the workspace actually
//! runs hot:
//!
//! * [`PortableGf`] — branchless scalar lanes over `u64`, written so the
//!   compiler can autovectorize them on any target. Always available; the
//!   build-time default everywhere SIMD is not.
//! * `Avx2Gf31` — explicit AVX2 intrinsics for [`Mersenne31`](crate::Mersenne31), four
//!   64-bit lanes per `__m256i` (values stay below 2³¹ so `vpmuludq`
//!   produces exact products). Compiled in only when the build enables the
//!   `avx2` target feature (e.g. `RUSTFLAGS="-C target-cpu=native"`), and
//!   even then the `force-portable` cargo feature wins.
//!
//! Backend selection is **build-time**: each [`PrimeField`] names its
//! packed representative through [`PrimeField::Packed`], chosen by
//! `cfg(target_feature)`. On aarch64 the portable lanes are the backend —
//! they are exactly the shape NEON autovectorization digests. There is no
//! runtime dispatch, so the hot loops monomorphize to straight-line vector
//! code.
//!
//! Every packed path is *bit-identical* to its scalar oracle
//! ([`horner_lanes_scalar_into`], [`weighted_sum_rows_scalar_into`]) — the
//! same discipline the T-table AES keeps with `encrypt_block_reference`.
//! Field arithmetic is exact, so this is a strict equality, proptest-proven
//! in `tests/packed_equivalence.rs` for both fields, and it is why golden
//! wire fixtures are unaffected by the backend choice.
//!
//! # Example
//!
//! ```
//! use ppda_field::{packed, Gf31, Mersenne31};
//! let lanes: Vec<Gf31> = (0..7).map(Gf31::new).collect(); // odd count: tail covered
//! let weights = [Gf31::new(3), Gf31::new(5)];
//! let slab: Vec<Gf31> = (0..14).map(Gf31::new).collect();
//! let mut out = vec![Gf31::ZERO; 7];
//! packed::weighted_sum_rows_into(&weights, &slab, 7, &mut out);
//! let mut oracle = vec![Gf31::ZERO; 7];
//! packed::weighted_sum_rows_scalar_into(&weights, &slab, 7, &mut oracle);
//! assert_eq!(out, oracle);
//! assert!(!packed::backend_name::<Mersenne31>().is_empty());
//! ```

use core::marker::PhantomData;

use crate::element::{Gf, PrimeField};

/// `WIDTH` field elements of GF(p) processed as one value.
///
/// Implementations keep every lane in canonical reduced form (`< p`), so
/// [`PackedField::store`] always writes valid [`Gf`] elements and packed
/// results equal the scalar results exactly — field arithmetic has no
/// rounding, so "bit-identical" is simply "correct".
///
/// The trait is deliberately small: the two hot loops (Horner evaluation
/// and weighted sums) only need splat/load/store, `add`, `mul` and the
/// fused [`PackedField::mul_add`].
pub trait PackedField<P: PrimeField>: Copy + Clone + Send + Sync + Sized {
    /// Number of field elements per packed value.
    const WIDTH: usize;
    /// Short backend label (`"portable"`, `"avx2"`), surfaced by
    /// [`backend_name`] for benchmark records.
    const BACKEND: &'static str;

    /// Broadcast one element into every lane.
    fn splat(v: Gf<P>) -> Self;

    /// All lanes zero.
    fn zero() -> Self;

    /// Load `WIDTH` consecutive elements from the head of `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() < WIDTH`.
    fn load(src: &[Gf<P>]) -> Self;

    /// Store the lanes into the head of `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() < WIDTH`.
    fn store(self, dst: &mut [Gf<P>]);

    /// Lane-wise field addition.
    #[must_use]
    fn add(self, rhs: Self) -> Self;

    /// Lane-wise field multiplication.
    #[must_use]
    fn mul(self, rhs: Self) -> Self;

    /// `self * m + a`, lane-wise (the Horner step).
    #[inline]
    #[must_use]
    fn mul_add(self, m: Self, a: Self) -> Self {
        self.mul(m).add(a)
    }
}

/// The build-selected packed backend for field `P`.
pub type Packed<P> = <P as PrimeField>::Packed;

/// The build-selected backend's label for field `P` (`"portable"`,
/// `"avx2"`) — benchmarks record it next to their numbers so a perf
/// trajectory always names the code that produced it.
pub fn backend_name<P: PrimeField>() -> &'static str {
    Packed::<P>::BACKEND
}

/// The build-selected backend's lane width for field `P`.
pub fn backend_width<P: PrimeField>() -> usize {
    Packed::<P>::WIDTH
}

// ---------------------------------------------------------------------------
// Portable backend
// ---------------------------------------------------------------------------

/// Portable packed lanes: four `u64` residues, all operations branchless.
///
/// The scalar [`Gf`] operators branch on the reduction carry, which blocks
/// autovectorization; these lanes use the `min`-select idiom instead
/// (`s.min(s - p)` picks the reduced representative because the subtraction
/// wraps far above `p` when no fold is due), so the compiler can keep the
/// whole Horner/weighted-sum kernel in vector registers on any target —
/// this is the NEON story on aarch64.
#[derive(Copy, Clone, Debug)]
pub struct PortableGf<P: PrimeField>([u64; 4], PhantomData<P>);

impl<P: PrimeField> PackedField<P> for PortableGf<P> {
    const WIDTH: usize = 4;
    const BACKEND: &'static str = "portable";

    #[inline]
    fn splat(v: Gf<P>) -> Self {
        PortableGf([v.value(); 4], PhantomData)
    }

    #[inline]
    fn zero() -> Self {
        PortableGf([0; 4], PhantomData)
    }

    #[inline]
    fn load(src: &[Gf<P>]) -> Self {
        let mut lanes = [0u64; 4];
        for (l, s) in lanes.iter_mut().zip(&src[..4]) {
            *l = s.value();
        }
        PortableGf(lanes, PhantomData)
    }

    #[inline]
    fn store(self, dst: &mut [Gf<P>]) {
        for (d, &l) in dst[..4].iter_mut().zip(&self.0) {
            *d = Gf::new_unchecked(l);
        }
    }

    #[inline]
    fn add(self, rhs: Self) -> Self {
        let mut lanes = [0u64; 4];
        for (lane, (&a, &b)) in lanes.iter_mut().zip(self.0.iter().zip(&rhs.0)) {
            // Both operands < p < 2^62: the sum cannot overflow, and when
            // it is already reduced the wrapping subtraction lands above
            // 2^63, so `min` selects the canonical representative.
            let s = a + b;
            *lane = s.min(s.wrapping_sub(P::MODULUS));
        }
        PortableGf(lanes, PhantomData)
    }

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        let mut lanes = [0u64; 4];
        for (lane, (&a, &b)) in lanes.iter_mut().zip(self.0.iter().zip(&rhs.0)) {
            *lane = P::mul_reduced(a, b);
        }
        PortableGf(lanes, PhantomData)
    }
}

// ---------------------------------------------------------------------------
// AVX2 backend (x86-64, build-time opt-in)
// ---------------------------------------------------------------------------

/// Explicit AVX2 lanes for [`Mersenne31`](crate::Mersenne31): only
/// compiled when the build itself enables the `avx2` target feature, so
/// calling the intrinsics needs no runtime detection.
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    not(feature = "force-portable")
))]
#[allow(unsafe_code)]
mod avx2 {
    use core::arch::x86_64::*;

    use super::PackedField;
    use crate::element::{Gf, Mersenne31};

    const P: i64 = (1 << 31) - 1;

    /// Four [`Mersenne31`] residues in the 64-bit lanes of one `__m256i`.
    ///
    /// Residues stay below 2³¹, so `vpmuludq` (low-32 × low-32 → 64-bit)
    /// computes exact products and two 31-bit folds plus one conditional
    /// subtract re-canonicalize — the classic packed-Mersenne pattern.
    /// Loads and stores go straight through memory: [`Gf`] is
    /// `repr(transparent)` over its `u64` residue.
    #[derive(Copy, Clone, Debug)]
    pub struct Avx2Gf31(__m256i);

    impl Avx2Gf31 {
        /// Select the canonical representative of `r ≤ p + 1` held in
        /// 64-bit lanes: `r` when `r < p`, else `r − p`.
        #[inline]
        fn canonicalize(r: __m256i) -> __m256i {
            // SAFETY: AVX2 is a compile-time target feature of this module.
            unsafe {
                let p = _mm256_set1_epi64x(P);
                let folded = _mm256_sub_epi64(r, p);
                // Lanes are far below 2^63, so the signed compare is exact.
                let keep = _mm256_cmpgt_epi64(p, r);
                _mm256_blendv_epi8(folded, r, keep)
            }
        }
    }

    impl PackedField<Mersenne31> for Avx2Gf31 {
        const WIDTH: usize = 4;
        const BACKEND: &'static str = "avx2";

        #[inline]
        fn splat(v: Gf<Mersenne31>) -> Self {
            // SAFETY: AVX2 is a compile-time target feature of this module.
            unsafe { Avx2Gf31(_mm256_set1_epi64x(v.value() as i64)) }
        }

        #[inline]
        fn zero() -> Self {
            // SAFETY: as above.
            unsafe { Avx2Gf31(_mm256_setzero_si256()) }
        }

        #[inline]
        fn load(src: &[Gf<Mersenne31>]) -> Self {
            assert!(src.len() >= 4, "packed load needs WIDTH elements");
            // SAFETY: `Gf` is repr(transparent) over u64, the bounds check
            // guarantees 32 readable bytes, and loadu has no alignment
            // requirement.
            unsafe { Avx2Gf31(_mm256_loadu_si256(src.as_ptr() as *const __m256i)) }
        }

        #[inline]
        fn store(self, dst: &mut [Gf<Mersenne31>]) {
            assert!(dst.len() >= 4, "packed store needs WIDTH elements");
            // SAFETY: as in `load`; every lane is kept canonical (< p), so
            // the bytes written are valid `Gf` residues.
            unsafe { _mm256_storeu_si256(dst.as_mut_ptr() as *mut __m256i, self.0) }
        }

        #[inline]
        fn add(self, rhs: Self) -> Self {
            // SAFETY: as above.
            let sum = unsafe { _mm256_add_epi64(self.0, rhs.0) };
            // sum < 2^32 ≤ p + p, one conditional subtract canonicalizes.
            Avx2Gf31(Self::canonicalize(sum))
        }

        #[inline]
        fn mul(self, rhs: Self) -> Self {
            // SAFETY: as above.
            unsafe {
                let p = _mm256_set1_epi64x(P);
                // Exact 62-bit products of the sub-2^31 residues.
                let prod = _mm256_mul_epu32(self.0, rhs.0);
                // Two folds of 2^31 ≡ 1 (mod p): < 2^62 → < 2^32 → ≤ p + 1.
                let fold1 =
                    _mm256_add_epi64(_mm256_and_si256(prod, p), _mm256_srli_epi64::<31>(prod));
                let fold2 =
                    _mm256_add_epi64(_mm256_and_si256(fold1, p), _mm256_srli_epi64::<31>(fold1));
                Avx2Gf31(Self::canonicalize(fold2))
            }
        }
    }
}

#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    not(feature = "force-portable")
))]
pub use avx2::Avx2Gf31;

// ---------------------------------------------------------------------------
// The two hot-loop shapes, packed with scalar tails + scalar oracles
// ---------------------------------------------------------------------------

/// Horner-evaluate `lanes` polynomials held degree-major in `coeffs`
/// (`coeffs[d * lanes + lane]`) at `x`, writing lane results into `out`.
///
/// Full `WIDTH`-lane chunks keep their accumulator in a vector register
/// across all degrees; the `lanes % WIDTH` tail runs the scalar oracle, so
/// every lane — packed or tail — produces the identical element.
///
/// # Panics
///
/// Panics if `out.len() != lanes` or `coeffs.len() < (degree + 1) * lanes`.
pub fn horner_lanes_into<P: PrimeField>(
    coeffs: &[Gf<P>],
    lanes: usize,
    degree: usize,
    x: Gf<P>,
    out: &mut [Gf<P>],
) {
    assert_eq!(out.len(), lanes, "output must cover all lanes");
    assert!(
        coeffs.len() >= (degree + 1) * lanes,
        "coefficient slab too short"
    );
    let width = Packed::<P>::WIDTH;
    let xs = Packed::<P>::splat(x);
    let mut lane = 0;
    while lane + width <= lanes {
        let mut acc = Packed::<P>::zero();
        for d in (0..=degree).rev() {
            let row = &coeffs[d * lanes + lane..];
            acc = acc.mul_add(xs, Packed::<P>::load(row));
        }
        acc.store(&mut out[lane..]);
        lane += width;
    }
    horner_tail_scalar(coeffs, lanes, degree, x, out, lane);
}

/// Scalar oracle for [`horner_lanes_into`]: the pre-SIMD loop, kept as the
/// reference the packed path is proptest-proven identical to.
pub fn horner_lanes_scalar_into<P: PrimeField>(
    coeffs: &[Gf<P>],
    lanes: usize,
    degree: usize,
    x: Gf<P>,
    out: &mut [Gf<P>],
) {
    assert_eq!(out.len(), lanes, "output must cover all lanes");
    assert!(
        coeffs.len() >= (degree + 1) * lanes,
        "coefficient slab too short"
    );
    horner_tail_scalar(coeffs, lanes, degree, x, out, 0);
}

/// Scalar Horner over lanes `from..lanes` (whole loop when `from == 0`).
fn horner_tail_scalar<P: PrimeField>(
    coeffs: &[Gf<P>],
    lanes: usize,
    degree: usize,
    x: Gf<P>,
    out: &mut [Gf<P>],
    from: usize,
) {
    for lane in from..lanes {
        let mut acc = Gf::ZERO;
        for d in (0..=degree).rev() {
            acc = acc * x + coeffs[d * lanes + lane];
        }
        out[lane] = acc;
    }
}

/// Weighted row sum over an x-major slab: `out[lane] = Σᵢ wᵢ ·
/// slab[i * lanes + lane]` — the reconstruction/aggregation kernel.
///
/// Accumulates whole `WIDTH`-lane chunks in vector registers across every
/// row; the tail lanes run the scalar oracle.
///
/// # Panics
///
/// Panics if `out.len() != lanes` or `slab.len() < weights.len() * lanes`.
pub fn weighted_sum_rows_into<P: PrimeField>(
    weights: &[Gf<P>],
    slab: &[Gf<P>],
    lanes: usize,
    out: &mut [Gf<P>],
) {
    assert_eq!(out.len(), lanes, "output must cover all lanes");
    assert!(
        slab.len() >= weights.len() * lanes,
        "share slab shorter than weights × lanes"
    );
    let width = Packed::<P>::WIDTH;
    let mut lane = 0;
    while lane + width <= lanes {
        let mut acc = Packed::<P>::zero();
        for (i, &w) in weights.iter().enumerate() {
            let row = Packed::<P>::load(&slab[i * lanes + lane..]);
            acc = row.mul_add(Packed::<P>::splat(w), acc);
        }
        acc.store(&mut out[lane..]);
        lane += width;
    }
    for l in lane..lanes {
        let mut acc = Gf::ZERO;
        for (i, &w) in weights.iter().enumerate() {
            acc += slab[i * lanes + l] * w;
        }
        out[l] = acc;
    }
}

/// Scalar oracle for [`weighted_sum_rows_into`]: row-major accumulation,
/// exactly the pre-SIMD reconstruction loop.
pub fn weighted_sum_rows_scalar_into<P: PrimeField>(
    weights: &[Gf<P>],
    slab: &[Gf<P>],
    lanes: usize,
    out: &mut [Gf<P>],
) {
    assert_eq!(out.len(), lanes, "output must cover all lanes");
    assert!(
        slab.len() >= weights.len() * lanes,
        "share slab shorter than weights × lanes"
    );
    if lanes == 0 {
        return; // zero lanes: nothing to accumulate (chunks(0) would panic)
    }
    out.fill(Gf::ZERO);
    for (&w, row) in weights.iter().zip(slab.chunks(lanes)) {
        for (acc, &y) in out.iter_mut().zip(row) {
            *acc += y * w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Gf31, Gf61, Mersenne31, Mersenne61};
    use crate::SplitMix64;
    use rand::RngCore;

    fn random_gf31(rng: &mut SplitMix64, n: usize) -> Vec<Gf31> {
        (0..n).map(|_| Gf31::random(rng)).collect()
    }

    #[test]
    fn packed_add_mul_match_scalar_lanewise() {
        let mut rng = SplitMix64::new(0xACED);
        for _ in 0..200 {
            let a = random_gf31(&mut rng, 4);
            let b = random_gf31(&mut rng, 4);
            let pa = Packed::<Mersenne31>::load(&a);
            let pb = Packed::<Mersenne31>::load(&b);
            let mut sum = [Gf31::ZERO; 4];
            let mut prod = [Gf31::ZERO; 4];
            pa.add(pb).store(&mut sum);
            pa.mul(pb).store(&mut prod);
            for i in 0..4 {
                assert_eq!(sum[i], a[i] + b[i]);
                assert_eq!(prod[i], a[i] * b[i]);
            }
        }
    }

    #[test]
    fn packed_extremes_reduce_correctly() {
        // p−1 is the worst case for every fold and conditional subtract.
        let top31 = Gf31::new(Gf31::modulus() - 1);
        let a = [top31; 4];
        let p = Packed::<Mersenne31>::load(&a);
        let mut out = [Gf31::ZERO; 4];
        p.add(p).store(&mut out);
        assert_eq!(out, [top31 + top31; 4]);
        p.mul(p).store(&mut out);
        assert_eq!(out, [top31 * top31; 4]);

        let top61 = Gf61::new(Gf61::modulus() - 1);
        let b = [top61; 4];
        let q = Packed::<Mersenne61>::load(&b);
        let mut out61 = [Gf61::ZERO; 4];
        q.mul(q).store(&mut out61);
        assert_eq!(out61, [top61 * top61; 4]);
        q.add(q).store(&mut out61);
        assert_eq!(out61, [top61 + top61; 4]);
    }

    #[test]
    fn portable_backend_matches_build_backend() {
        // Whatever the build selected, the generic portable lanes agree
        // with it element for element (on AVX2 builds this is the
        // cross-backend check; on portable builds it is an identity).
        let mut rng = SplitMix64::new(0xBEEF);
        for _ in 0..200 {
            let a = random_gf31(&mut rng, 4);
            let b = random_gf31(&mut rng, 4);
            let mut native = [Gf31::ZERO; 4];
            let mut portable = [Gf31::ZERO; 4];
            Packed::<Mersenne31>::load(&a)
                .mul_add(
                    Packed::<Mersenne31>::load(&b),
                    Packed::<Mersenne31>::splat(a[0]),
                )
                .store(&mut native);
            PortableGf::<Mersenne31>::load(&a)
                .mul_add(
                    PortableGf::<Mersenne31>::load(&b),
                    PortableGf::<Mersenne31>::splat(a[0]),
                )
                .store(&mut portable);
            assert_eq!(native, portable);
        }
    }

    #[test]
    fn horner_matches_oracle_including_tails() {
        let mut rng = SplitMix64::new(0x40E);
        for lanes in [0usize, 1, 3, 4, 5, 7, 8, 11, 16, 23] {
            for degree in [0usize, 1, 2, 5] {
                let coeffs = random_gf31(&mut rng, (degree + 1) * lanes);
                let x = Gf31::random(&mut rng);
                let mut fast = vec![Gf31::ZERO; lanes];
                let mut slow = vec![Gf31::ZERO; lanes];
                horner_lanes_into(&coeffs, lanes, degree, x, &mut fast);
                horner_lanes_scalar_into(&coeffs, lanes, degree, x, &mut slow);
                assert_eq!(fast, slow, "lanes={lanes} degree={degree}");
            }
        }
    }

    #[test]
    fn weighted_sum_matches_oracle_including_tails() {
        let mut rng = SplitMix64::new(0x5EED);
        for lanes in [0usize, 1, 2, 3, 5, 6, 9, 13, 16] {
            for rows in [0usize, 1, 3, 7] {
                let weights = random_gf31(&mut rng, rows);
                let slab = random_gf31(&mut rng, rows * lanes);
                let mut fast = vec![Gf31::ZERO; lanes];
                let mut slow = vec![Gf31::ZERO; lanes];
                weighted_sum_rows_into(&weights, &slab, lanes, &mut fast);
                weighted_sum_rows_scalar_into(&weights, &slab, lanes, &mut slow);
                assert_eq!(fast, slow, "lanes={lanes} rows={rows}");
            }
        }
    }

    #[test]
    fn m61_kernels_match_oracles() {
        let mut rng = SplitMix64::new(0x61);
        let lanes = 7;
        let degree = 3;
        let coeffs: Vec<Gf61> = (0..(degree + 1) * lanes)
            .map(|_| Gf61::random(&mut rng))
            .collect();
        let x = Gf61::random(&mut rng);
        let mut fast = vec![Gf61::ZERO; lanes];
        let mut slow = vec![Gf61::ZERO; lanes];
        horner_lanes_into(&coeffs, lanes, degree, x, &mut fast);
        horner_lanes_scalar_into(&coeffs, lanes, degree, x, &mut slow);
        assert_eq!(fast, slow);

        let weights: Vec<Gf61> = (0..4).map(|_| Gf61::random(&mut rng)).collect();
        let slab: Vec<Gf61> = (0..4 * lanes).map(|_| Gf61::random(&mut rng)).collect();
        weighted_sum_rows_into(&weights, &slab, lanes, &mut fast);
        weighted_sum_rows_scalar_into(&weights, &slab, lanes, &mut slow);
        assert_eq!(fast, slow);
    }

    #[test]
    fn backend_is_named_and_sized() {
        let name = backend_name::<Mersenne31>();
        assert!(name == "portable" || name == "avx2", "got {name}");
        assert_eq!(backend_width::<Mersenne31>(), 4);
        assert_eq!(backend_name::<Mersenne61>(), "portable");
    }

    #[test]
    fn splat_rng_state_is_untouched() {
        // Packed evaluation draws no randomness: RNG-order invariance of
        // the callers reduces to "these kernels never touch an RNG", which
        // the signatures already guarantee; this pins the weaker dynamic
        // fact that a round of packed math leaves a shared RNG untouched.
        let mut rng = SplitMix64::new(1);
        let before = rng.next_u64();
        let mut rng2 = SplitMix64::new(1);
        let coeffs = random_gf31(&mut SplitMix64::new(9), 8);
        let mut out = vec![Gf31::ZERO; 4];
        horner_lanes_into(&coeffs, 4, 1, Gf31::new(3), &mut out);
        assert_eq!(before, rng2.next_u64());
    }
}
