//! Network topologies: the two public testbeds the paper evaluates on, plus
//! synthetic generators for ablations and tests.
//!
//! A [`Topology`] is a set of node positions together with a *static* link
//! quality matrix (PRR and mean RSSI per directed pair), produced by pushing
//! the geometry through the [`ppda_radio::PathLossModel`] with per-link
//! shadowing drawn from a fixed per-testbed seed. This mirrors a physical
//! testbed: the deployment (walls, distances) is fixed across experiments,
//! while per-packet fading varies per run.
//!
//! * [`Topology::flocklab`] — 26 nodes, office-building geometry,
//!   ≈4-hop diameter (FlockLab 2, ETH Zürich).
//! * [`Topology::dcube`] — 45 nodes, denser but wider institute geometry,
//!   ≈6-hop diameter (D-Cube, TU Graz).
//! * [`Topology::grid`], [`Topology::line`], [`Topology::random_geometric`]
//!   — synthetic families.
//!
//! # Example
//!
//! ```
//! use ppda_topology::Topology;
//! let t = Topology::flocklab();
//! assert_eq!(t.len(), 26);
//! assert!(t.is_connected(0.5));
//! let hops = t.hops_from(0, 0.5);
//! assert!(hops.iter().all(|h| h.is_some()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod generators;

#[cfg(feature = "serde")]
mod serde_impl;

use ppda_radio::PathLossModel;
use ppda_sim::{derive_stream, Xoshiro256};

/// Links with PRR below this floor are treated as non-existent.
pub const LINK_PRR_FLOOR: f64 = 0.01;

/// A fixed deployment: node positions plus static link-quality matrices.
///
/// Link metrics are symmetric (channel reciprocity) and exclude self-links.
///
/// # Example
///
/// ```
/// use ppda_topology::Topology;
/// let flocklab = Topology::flocklab();
/// assert_eq!(flocklab.len(), 26);
/// assert_eq!(flocklab.name(), "flocklab");
/// let grid = Topology::grid(3, 3, 18.0, 5);
/// assert_eq!(grid.len(), 9);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    positions: Vec<(f64, f64)>,
    /// Flattened n×n PRR matrix; diagonal is 0.
    prr: Vec<f64>,
    /// Flattened n×n mean RSSI matrix (dBm); diagonal is 0 (unused).
    rssi: Vec<f64>,
    /// RSSI→PRR curve parameters, kept so link quality can be re-evaluated
    /// under round-scale attenuation (see [`Topology::prr_at`]).
    curve: PrrCurve,
}

/// The RSSI→PRR mapping a topology was built with.
#[derive(Debug, Clone, Copy)]
struct PrrCurve {
    sensitivity_dbm: f64,
    transition_db: f64,
    tx_power_dbm: f64,
    pl0_db: f64,
    d0_m: f64,
    exponent: f64,
    shadowing_sigma_db: f64,
}

impl PrrCurve {
    fn to_model(self) -> PathLossModel {
        PathLossModel {
            pl0_db: self.pl0_db,
            d0_m: self.d0_m,
            exponent: self.exponent,
            shadowing_sigma_db: self.shadowing_sigma_db,
            tx_power_dbm: self.tx_power_dbm,
            sensitivity_dbm: self.sensitivity_dbm,
            transition_db: self.transition_db,
        }
    }
}

impl Topology {
    /// Build a topology from explicit positions under a channel model.
    ///
    /// `seed` drives the static per-link shadowing draw; a given
    /// `(positions, model, seed)` triple always yields the same deployment.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 positions are supplied or more than
    /// `u16::MAX` nodes are requested.
    pub fn from_positions(
        name: impl Into<String>,
        positions: Vec<(f64, f64)>,
        model: &PathLossModel,
        seed: u64,
    ) -> Self {
        assert!(positions.len() >= 2, "a network needs at least two nodes");
        assert!(
            positions.len() <= u16::MAX as usize,
            "node ids are u16; got {} nodes",
            positions.len()
        );
        let n = positions.len();
        let mut prr = vec![0.0; n * n];
        let mut rssi = vec![0.0; n * n];
        for i in 0..n {
            for j in i + 1..n {
                // One shadowing draw per unordered pair keeps reciprocity.
                let mut link_rng = Xoshiro256::seed_from(derive_stream(seed, (i * n + j) as u64));
                let shadow = model.draw_shadowing(&mut link_rng);
                let (xi, yi) = positions[i];
                let (xj, yj) = positions[j];
                let dist = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt().max(0.1);
                let r = model.rssi_dbm(dist, shadow);
                let mut p = model.prr_from_rssi(r);
                if p < LINK_PRR_FLOOR {
                    p = 0.0;
                }
                prr[i * n + j] = p;
                prr[j * n + i] = p;
                rssi[i * n + j] = r;
                rssi[j * n + i] = r;
            }
        }
        Topology {
            name: name.into(),
            positions,
            prr,
            rssi,
            curve: PrrCurve {
                sensitivity_dbm: model.sensitivity_dbm,
                transition_db: model.transition_db,
                tx_power_dbm: model.tx_power_dbm,
                pl0_db: model.pl0_db,
                d0_m: model.d0_m,
                exponent: model.exponent,
                shadowing_sigma_db: model.shadowing_sigma_db,
            },
        }
    }

    /// The FlockLab 2 testbed model: 26 nRF52840 nodes across an office
    /// building wing (~130 m × 55 m), multi-hop with diameter ≈ 4 at a
    /// 50% PRR link threshold.
    pub fn flocklab() -> Self {
        generators::flocklab()
    }

    /// The D-Cube testbed model: 45 nRF52840 nodes across a wider institute
    /// area (~170 m × 75 m), denser neighborhoods, diameter ≈ 6.
    pub fn dcube() -> Self {
        generators::dcube()
    }

    /// A jittered rectangular grid of `nx × ny` nodes with `spacing` meters
    /// between grid points.
    pub fn grid(nx: usize, ny: usize, spacing: f64, seed: u64) -> Self {
        generators::grid(nx, ny, spacing, seed)
    }

    /// A line of `n` nodes, `spacing` meters apart — the extreme multi-hop
    /// case used in tests and NTX ablations.
    pub fn line(n: usize, spacing: f64, seed: u64) -> Self {
        generators::line(n, spacing, seed)
    }

    /// `n` nodes placed uniformly at random in a `width × height` area.
    pub fn random_geometric(n: usize, width: f64, height: f64, seed: u64) -> Self {
        generators::random_geometric(n, width, height, seed)
    }

    /// Human-readable deployment name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` if the topology has no nodes (never constructible — kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Node positions in meters.
    pub fn positions(&self) -> &[(f64, f64)] {
        &self.positions
    }

    /// Euclidean distance between two nodes in meters.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        let (xi, yi) = self.positions[i];
        let (xj, yj) = self.positions[j];
        ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt()
    }

    /// Static PRR of the link `i → j` (0 when no usable link).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn prr(&self, i: usize, j: usize) -> f64 {
        self.prr[i * self.len() + j]
    }

    /// Mean RSSI (dBm) of the link `i → j`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn rssi(&self, i: usize, j: usize) -> f64 {
        self.rssi[i * self.len() + j]
    }

    /// PRR of `i → j` under an extra `attenuation_db` of round-scale
    /// fading/interference (0 dB reproduces [`Topology::prr`], modulo the
    /// link floor).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn prr_at(&self, i: usize, j: usize, attenuation_db: f64) -> f64 {
        if i == j {
            return 0.0;
        }
        let model = self.curve.to_model();
        let p = model.prr_from_rssi(self.rssi(i, j) - attenuation_db);
        if p < LINK_PRR_FLOOR {
            0.0
        } else {
            p
        }
    }

    /// Neighbors of `i` with PRR at least `min_prr`, sorted by descending
    /// PRR (ties by node id).
    pub fn neighbors(&self, i: usize, min_prr: f64) -> Vec<usize> {
        let mut out: Vec<usize> = (0..self.len())
            .filter(|&j| j != i && self.prr(i, j) >= min_prr)
            .collect();
        out.sort_by(|&a, &b| {
            self.prr(i, b)
                .partial_cmp(&self.prr(i, a))
                .expect("PRRs are finite")
                .then(a.cmp(&b))
        });
        out
    }

    /// Mean neighbor count at a PRR threshold (network density indicator).
    pub fn mean_degree(&self, min_prr: f64) -> f64 {
        let total: usize = (0..self.len())
            .map(|i| self.neighbors(i, min_prr).len())
            .sum();
        total as f64 / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flocklab_shape() {
        let t = Topology::flocklab();
        assert_eq!(t.len(), 26);
        assert_eq!(t.name(), "flocklab");
        assert!(t.is_connected(0.5), "testbed graph must be connected");
        let d = t.diameter(0.5).unwrap();
        assert!((3..=6).contains(&d), "flocklab diameter {d} out of range");
    }

    #[test]
    fn dcube_shape() {
        let t = Topology::dcube();
        assert_eq!(t.len(), 45);
        assert_eq!(t.name(), "dcube");
        assert!(t.is_connected(0.5));
        let d = t.diameter(0.5).unwrap();
        assert!((4..=9).contains(&d), "dcube diameter {d} out of range");
    }

    #[test]
    fn deterministic_construction() {
        let a = Topology::flocklab();
        let b = Topology::flocklab();
        assert_eq!(a.prr, b.prr);
        assert_eq!(a.positions, b.positions);
    }

    #[test]
    fn symmetry_and_diagonal() {
        let t = Topology::flocklab();
        for i in 0..t.len() {
            assert_eq!(t.prr(i, i), 0.0);
            for j in 0..t.len() {
                assert_eq!(t.prr(i, j), t.prr(j, i));
                assert!((0.0..=1.0).contains(&t.prr(i, j)));
            }
        }
    }

    #[test]
    fn prr_floor_applied() {
        let t = Topology::flocklab();
        for i in 0..t.len() {
            for j in 0..t.len() {
                let p = t.prr(i, j);
                assert!(p == 0.0 || p >= LINK_PRR_FLOOR);
            }
        }
    }

    #[test]
    fn nearby_nodes_have_good_links() {
        let t = Topology::grid(3, 3, 10.0, 7);
        // Adjacent grid nodes at ~10 m must be solid links.
        let p = t.prr(0, 1);
        assert!(p > 0.85, "10 m link prr = {p}");
    }

    #[test]
    fn neighbors_sorted_by_quality() {
        let t = Topology::flocklab();
        let nb = t.neighbors(0, 0.1);
        for w in nb.windows(2) {
            assert!(t.prr(0, w[0]) >= t.prr(0, w[1]));
        }
        assert!(!nb.contains(&0), "self is not a neighbor");
    }

    #[test]
    fn distance_is_metric_like() {
        let t = Topology::flocklab();
        assert_eq!(t.distance(3, 3), 0.0);
        assert!((t.distance(0, 1) - t.distance(1, 0)).abs() < 1e-12);
        assert!(t.distance(0, 25) > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_node() {
        let model = PathLossModel::indoor_office();
        let _ = Topology::from_positions("bad", vec![(0.0, 0.0)], &model, 1);
    }

    #[test]
    fn mean_degree_monotone_in_threshold() {
        let t = Topology::dcube();
        assert!(t.mean_degree(0.2) >= t.mean_degree(0.8));
    }
}
