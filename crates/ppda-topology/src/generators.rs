//! Topology generators: the two testbed models and synthetic families.

use ppda_radio::PathLossModel;
use ppda_sim::{derive_stream, Xoshiro256};

use crate::Topology;

/// Fixed shadowing seed for the FlockLab deployment model. Chosen (once)
/// so that the resulting graph is connected with diameter 4 at the 50% PRR
/// threshold, matching the published multi-hop character of the testbed.
const FLOCKLAB_SEED: u64 = 0xF10C_14AB;

/// Fixed shadowing seed for the D-Cube deployment model (connected,
/// diameter ≈ 6 at the 50% threshold).
const DCUBE_SEED: u64 = 0x0DC0_BE45;

/// FlockLab 2: 26 nodes over an office-building wing. Positions (meters)
/// approximate the three-corridor layout of the ETH ETZ building floor the
/// testbed spans; coordinates are synthetic but preserve node count, area
/// and hop diameter.
pub(crate) fn flocklab() -> Topology {
    let positions: Vec<(f64, f64)> = vec![
        // North corridor.
        (5.0, 5.0),
        (20.0, 8.0),
        (35.0, 5.0),
        (50.0, 10.0),
        (65.0, 5.0),
        (80.0, 8.0),
        (95.0, 5.0),
        (110.0, 10.0),
        (125.0, 5.0),
        // Middle offices.
        (12.0, 25.0),
        (30.0, 28.0),
        (48.0, 22.0),
        (62.0, 28.0),
        (78.0, 22.0),
        (95.0, 28.0),
        (112.0, 25.0),
        (125.0, 28.0),
        // South corridor.
        (8.0, 45.0),
        (25.0, 48.0),
        (42.0, 45.0),
        (58.0, 50.0),
        (75.0, 45.0),
        (92.0, 50.0),
        (108.0, 45.0),
        (122.0, 50.0),
        // Stairwell hub.
        (65.0, 38.0),
    ];
    Topology::from_positions(
        "flocklab",
        positions,
        &PathLossModel::indoor_office(),
        FLOCKLAB_SEED,
    )
}

/// D-Cube: 45 nodes over a wider institute area, denser per-room placement.
/// Synthetic 9×5 jittered lattice spanning ~170 m × 75 m.
pub(crate) fn dcube() -> Topology {
    let mut rng = Xoshiro256::seed_from(derive_stream(DCUBE_SEED, 1));
    let mut positions = Vec::with_capacity(45);
    for row in 0..5 {
        for col in 0..9 {
            let jx = (rng.next_f64() - 0.5) * 8.0;
            let jy = (rng.next_f64() - 0.5) * 8.0;
            positions.push((col as f64 * 20.0 + jx, row as f64 * 17.0 + jy));
        }
    }
    Topology::from_positions("dcube", positions, &PathLossModel::industrial(), DCUBE_SEED)
}

pub(crate) fn grid(nx: usize, ny: usize, spacing: f64, seed: u64) -> Topology {
    assert!(nx * ny >= 2, "grid needs at least two nodes");
    let mut rng = Xoshiro256::seed_from(derive_stream(seed, 0x9d1d));
    let mut positions = Vec::with_capacity(nx * ny);
    for y in 0..ny {
        for x in 0..nx {
            let jx = (rng.next_f64() - 0.5) * spacing * 0.2;
            let jy = (rng.next_f64() - 0.5) * spacing * 0.2;
            positions.push((x as f64 * spacing + jx, y as f64 * spacing + jy));
        }
    }
    Topology::from_positions(
        format!("grid-{nx}x{ny}"),
        positions,
        &PathLossModel::indoor_office(),
        seed,
    )
}

pub(crate) fn line(n: usize, spacing: f64, seed: u64) -> Topology {
    assert!(n >= 2, "line needs at least two nodes");
    let positions: Vec<(f64, f64)> = (0..n).map(|i| (i as f64 * spacing, 0.0)).collect();
    Topology::from_positions(
        format!("line-{n}"),
        positions,
        &PathLossModel::indoor_office(),
        seed,
    )
}

pub(crate) fn random_geometric(n: usize, width: f64, height: f64, seed: u64) -> Topology {
    assert!(n >= 2, "network needs at least two nodes");
    let mut rng = Xoshiro256::seed_from(derive_stream(seed, 0x6e0));
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.next_f64() * width, rng.next_f64() * height))
        .collect();
    Topology::from_positions(
        format!("rgg-{n}"),
        positions,
        &PathLossModel::indoor_office(),
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_counts() {
        let t = grid(4, 3, 15.0, 1);
        assert_eq!(t.len(), 12);
        assert!(t.name().contains("grid"));
    }

    #[test]
    fn line_is_a_chain() {
        let t = line(6, 30.0, 2);
        assert_eq!(t.len(), 6);
        // Adjacent nodes linked, distant nodes not.
        assert!(t.prr(0, 1) > 0.5, "adjacent prr {}", t.prr(0, 1));
        assert_eq!(t.prr(0, 5), 0.0, "150 m apart must be disconnected");
    }

    #[test]
    fn random_geometric_in_bounds() {
        let t = random_geometric(30, 100.0, 50.0, 3);
        for &(x, y) in t.positions() {
            assert!((0.0..=100.0).contains(&x));
            assert!((0.0..=50.0).contains(&y));
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            random_geometric(10, 50.0, 50.0, 9).positions(),
            random_geometric(10, 50.0, 50.0, 9).positions()
        );
        assert_eq!(dcube().positions(), dcube().positions());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_line_rejected() {
        line(1, 10.0, 0);
    }
}
