//! Feature-gated serde support for [`Topology`].
//!
//! The vendored serde subset has no derive macro and no struct data model,
//! so a topology serializes as a single length-prefixed byte string: a
//! version tag, the name, the position list, both link matrices and the
//! PRR-curve parameters, all little-endian. The format is self-contained
//! and byte-exact-stable across runs (topology construction is
//! deterministic), so snapshots can be committed as fixtures.

use serde::{Deserialize, Deserializer, Error, Serialize, Serializer};

use crate::{PrrCurve, Topology};

const FORMAT_VERSION: u8 = 1;

fn put_f64s(out: &mut Vec<u8>, values: impl IntoIterator<Item = f64>) {
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.bytes.len() < n {
            return Err("topology blob truncated".to_owned());
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f64(&mut self) -> Result<f64, String> {
        let b = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(f64::from_le_bytes(buf))
    }

    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, String> {
        (0..n).map(|_| self.f64()).collect()
    }
}

impl Topology {
    /// Encode to the versioned byte format behind the serde impls.
    ///
    /// Public so hand-rolled container formats (e.g. campaign checkpoints)
    /// can embed a topology as one length-prefixed field without going
    /// through a [`Serializer`]. The format is byte-exact-stable across
    /// runs; [`Topology::from_blob`] inverts it.
    pub fn to_blob(&self) -> Vec<u8> {
        let n = self.len();
        let mut out = Vec::with_capacity(1 + 4 + self.name.len() + (2 * n + 2 * n * n + 7) * 8);
        out.push(FORMAT_VERSION);
        out.extend_from_slice(&(self.name.len() as u32).to_le_bytes());
        out.extend_from_slice(self.name.as_bytes());
        out.extend_from_slice(&(n as u32).to_le_bytes());
        put_f64s(&mut out, self.positions.iter().flat_map(|&(x, y)| [x, y]));
        put_f64s(&mut out, self.prr.iter().copied());
        put_f64s(&mut out, self.rssi.iter().copied());
        let c = &self.curve;
        put_f64s(
            &mut out,
            [
                c.sensitivity_dbm,
                c.transition_db,
                c.tx_power_dbm,
                c.pl0_db,
                c.d0_m,
                c.exponent,
                c.shadowing_sigma_db,
            ],
        );
        out
    }

    /// Decode the versioned byte format produced by
    /// [`Topology::to_blob`].
    ///
    /// # Errors
    ///
    /// A human-readable message on version mismatch, truncation, trailing
    /// bytes or a non-UTF-8 name.
    pub fn from_blob(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Reader { bytes };
        let version = r.u8()?;
        if version != FORMAT_VERSION {
            return Err(format!("unsupported topology blob version {version}"));
        }
        let name_len = r.u32()? as usize;
        let name = String::from_utf8(r.take(name_len)?.to_vec())
            .map_err(|_| "topology name is not UTF-8".to_owned())?;
        let n = r.u32()? as usize;
        let flat = r.f64s(2 * n)?;
        let positions = flat.chunks(2).map(|c| (c[0], c[1])).collect();
        let prr = r.f64s(n * n)?;
        let rssi = r.f64s(n * n)?;
        let curve = PrrCurve {
            sensitivity_dbm: r.f64()?,
            transition_db: r.f64()?,
            tx_power_dbm: r.f64()?,
            pl0_db: r.f64()?,
            d0_m: r.f64()?,
            exponent: r.f64()?,
            shadowing_sigma_db: r.f64()?,
        };
        if !r.bytes.is_empty() {
            return Err("trailing bytes after topology blob".to_owned());
        }
        Ok(Topology {
            name,
            positions,
            prr,
            rssi,
            curve,
        })
    }
}

impl Serialize for Topology {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(&self.to_blob())
    }
}

impl<'de> Deserialize<'de> for Topology {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let bytes = Vec::<u8>::deserialize(deserializer)?;
        Topology::from_blob(&bytes).map_err(D::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::value::{from_value, to_value};

    #[test]
    fn value_round_trip_preserves_everything() {
        let t = Topology::grid(3, 3, 15.0, 9);
        let back: Topology = from_value(to_value(&t).unwrap()).unwrap();
        assert_eq!(back.name(), t.name());
        assert_eq!(back.positions(), t.positions());
        for i in 0..t.len() {
            for j in 0..t.len() {
                assert_eq!(back.prr(i, j), t.prr(i, j));
                assert_eq!(back.rssi(i, j), t.rssi(i, j));
            }
        }
    }

    #[test]
    fn truncated_blob_rejected() {
        let t = Topology::grid(2, 2, 15.0, 9);
        let blob = t.to_blob();
        assert!(Topology::from_blob(&blob[..blob.len() - 1]).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let t = Topology::grid(2, 2, 15.0, 9);
        let mut blob = t.to_blob();
        blob[0] = 99;
        assert!(Topology::from_blob(&blob).is_err());
    }
}
