//! Graph analysis over link-quality topologies: BFS hop counts, diameter,
//! connectivity, and the NTX-reachability neighbor rings S4 exploits.

use crate::Topology;

impl Topology {
    /// Hop distance from `from` to every node, counting links with PRR at
    /// least `min_prr` as edges. `None` for unreachable nodes;
    /// `Some(0)` for `from` itself.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    pub fn hops_from(&self, from: usize, min_prr: f64) -> Vec<Option<u32>> {
        assert!(from < self.len(), "node {from} out of range");
        let n = self.len();
        let mut hops = vec![None; n];
        hops[from] = Some(0);
        let mut frontier = vec![from];
        let mut depth = 0u32;
        while !frontier.is_empty() {
            depth += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                for (v, hop) in hops.iter_mut().enumerate() {
                    if v != u && hop.is_none() && self.prr(u, v) >= min_prr {
                        *hop = Some(depth);
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        hops
    }

    /// `true` when every node reaches every other over links with PRR at
    /// least `min_prr`.
    pub fn is_connected(&self, min_prr: f64) -> bool {
        self.hops_from(0, min_prr).iter().all(|h| h.is_some())
    }

    /// Network diameter in hops at the given link threshold, or `None` if
    /// the graph is disconnected.
    pub fn diameter(&self, min_prr: f64) -> Option<u32> {
        let mut max_hops = 0;
        for from in 0..self.len() {
            let hops = self.hops_from(from, min_prr);
            for h in hops {
                max_hops = max_hops.max(h?);
            }
        }
        Some(max_hops)
    }

    /// Eccentricity of a node: its maximum hop distance to any other node,
    /// or `None` if some node is unreachable.
    pub fn eccentricity(&self, node: usize, min_prr: f64) -> Option<u32> {
        let mut max_hops = 0;
        for h in self.hops_from(node, min_prr) {
            max_hops = max_hops.max(h?);
        }
        Some(max_hops)
    }

    /// The node with minimal eccentricity — the natural flood initiator.
    /// Ties break toward the lower node id. Falls back to node 0 if the
    /// graph is disconnected at this threshold.
    pub fn center_node(&self, min_prr: f64) -> usize {
        (0..self.len())
            .filter_map(|v| self.eccentricity(v, min_prr).map(|e| (e, v)))
            .min()
            .map(|(_, v)| v)
            .unwrap_or(0)
    }

    /// Nodes within `max_hops` hops of `node` (excluding the node itself),
    /// ordered by (hops, id) — the "reachable at this NTX" ring used by the
    /// S4 bootstrapping phase.
    pub fn ring(&self, node: usize, max_hops: u32, min_prr: f64) -> Vec<usize> {
        let hops = self.hops_from(node, min_prr);
        let mut out: Vec<(u32, usize)> = hops
            .iter()
            .enumerate()
            .filter_map(|(v, h)| match h {
                Some(d) if *d > 0 && *d <= max_hops => Some((*d, v)),
                _ => None,
            })
            .collect();
        out.sort();
        out.into_iter().map(|(_, v)| v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_hops_are_positions() {
        let t = Topology::line(5, 30.0, 1);
        let hops = t.hops_from(0, 0.5);
        for (i, h) in hops.iter().enumerate() {
            assert_eq!(h.unwrap() as usize, i, "node {i}");
        }
    }

    #[test]
    fn line_diameter() {
        let t = Topology::line(5, 30.0, 1);
        assert_eq!(t.diameter(0.5), Some(4));
    }

    #[test]
    fn line_center_is_middle() {
        let t = Topology::line(5, 30.0, 1);
        assert_eq!(t.center_node(0.5), 2);
    }

    #[test]
    fn disconnected_graph_detected() {
        // Two nodes 500 m apart cannot talk.
        let t = Topology::line(2, 500.0, 1);
        assert!(!t.is_connected(0.5));
        assert_eq!(t.diameter(0.5), None);
        assert_eq!(t.eccentricity(0, 0.5), None);
    }

    #[test]
    fn hops_from_self_is_zero() {
        let t = Topology::flocklab();
        assert_eq!(t.hops_from(7, 0.5)[7], Some(0));
    }

    #[test]
    fn ring_grows_with_hops() {
        let t = Topology::flocklab();
        let r1 = t.ring(0, 1, 0.5);
        let r2 = t.ring(0, 2, 0.5);
        let rmax = t.ring(0, 10, 0.5);
        assert!(r1.len() <= r2.len());
        assert!(r2.len() <= rmax.len());
        assert_eq!(rmax.len(), t.len() - 1, "everything reachable eventually");
        // Ring never contains the node itself.
        assert!(!r2.contains(&0));
        // One-hop ring equals the neighbor set at the same threshold.
        let mut nb = t.neighbors(0, 0.5);
        nb.sort_unstable();
        let mut r1s = r1.clone();
        r1s.sort_unstable();
        assert_eq!(nb, r1s);
    }

    #[test]
    fn ring_is_sorted_by_hops_then_id() {
        let t = Topology::line(6, 22.0, 1);
        let hops = t.hops_from(2, 0.5);
        let ring = t.ring(2, 2, 0.5);
        // Sorted by (hop, id), self excluded, only hops 1..=2.
        let mut expect: Vec<(u32, usize)> = hops
            .iter()
            .enumerate()
            .filter_map(|(v, h)| match h {
                Some(d) if (1..=2).contains(d) => Some((*d, v)),
                _ => None,
            })
            .collect();
        expect.sort();
        assert_eq!(ring, expect.into_iter().map(|(_, v)| v).collect::<Vec<_>>());
        assert!(!ring.is_empty());
        assert!(!ring.contains(&2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hops_from_bad_node_panics() {
        let t = Topology::line(3, 30.0, 1);
        let _ = t.hops_from(99, 0.5);
    }

    #[test]
    fn center_of_flocklab_is_central() {
        let t = Topology::flocklab();
        let c = t.center_node(0.5);
        let ecc_c = t.eccentricity(c, 0.5).unwrap();
        let ecc_corner = t.eccentricity(0, 0.5).unwrap();
        assert!(ecc_c <= ecc_corner);
    }
}
