//! A deployment lifecycle: one bootstrap, then periodic private
//! aggregation epochs, with cumulative energy accounting — the way a real
//! PPDA system would run for months.
//!
//! The `Deployment` compiles the round plan once; the `RoundDriver`'s
//! epoch clock then replays it with fresh randomness and a fresh round id
//! every step, accumulating `DriverStats` as it goes.
//!
//! ```text
//! cargo run --release --example periodic_sensing
//! ```
#![deny(deprecated)] // examples demonstrate the current API only

use ppda::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topology = Topology::flocklab();
    let config = ProtocolConfig::builder(topology.len()).build()?;
    let deployment = Deployment::builder()
        .topology(topology)
        .config(config)
        .protocol(ProtocolKind::S4)
        .seed(0x5E55)
        .build()?;

    println!(
        "deployment: {} nodes, {} aggregators, {}-slot sharing chain (compiled once)\n",
        deployment.topology().len(),
        deployment.plan().destinations().len(),
        deployment.plan().sharing_chain_len(),
    );
    println!("epoch  aggregate   latency(ms)  radio-on(ms)  energy(mJ)");
    println!("----------------------------------------------------------");
    let mut driver = deployment.driver();
    for epoch in 0..10 {
        let report = driver.step()?;
        println!(
            "{:>5}  {:>9}  {:>11.0}  {:>12.0}  {:>10.3}",
            epoch,
            report
                .aggregates()
                .map(|a| a[0].to_string())
                .unwrap_or_else(|| "-".into()),
            report.outcome.mean_latency_ms().unwrap_or(f64::NAN),
            report.outcome.mean_radio_on_ms(),
            report.outcome.mean_energy_mj(),
        );
    }

    let stats = driver.stats();
    println!(
        "\n{} rounds, {} perfect, {} recovered; cumulative mean-node energy {:.1} mJ",
        stats.rounds, stats.perfect_rounds, stats.recovered_rounds, stats.total_energy_mj
    );

    // Back-of-envelope lifetime: a CR2477 coin cell holds ~3.4 kJ. At one
    // aggregation epoch per 10 minutes the radio budget alone allows:
    let per_round = stats.total_energy_mj / stats.rounds as f64;
    let rounds_per_cell = 3_400_000.0 / per_round;
    let years = rounds_per_cell / (6.0 * 24.0 * 365.0);
    println!(
        "at 6 rounds/hour a CR2477 coin cell funds ≈ {years:.1} years of S4 aggregation radio time"
    );
    Ok(())
}
