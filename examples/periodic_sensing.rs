//! A deployment lifecycle: one bootstrap, then periodic private
//! aggregation epochs, with cumulative energy accounting — the way a real
//! PPDA system would run for months.
//!
//! ```text
//! cargo run --release --example periodic_sensing
//! ```

use ppda::mpc::{AggregationSession, ProtocolConfig, SessionProtocol};
use ppda::topology::Topology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topology = Topology::flocklab();
    let config = ProtocolConfig::builder(topology.len()).build()?;
    let mut session = AggregationSession::new(topology, config, SessionProtocol::S4, 0x5E55)?;

    // The session compiled its round plan once at bootstrap; every epoch
    // below replays it with fresh randomness and a fresh round id.
    println!(
        "deployment: {} nodes, {} aggregators, {}-slot sharing chain (compiled once)\n",
        session.topology().len(),
        session.plan().destinations().len(),
        session.plan().sharing_chain_len(),
    );
    println!("epoch  aggregate   latency(ms)  radio-on(ms)  energy(mJ)");
    println!("----------------------------------------------------------");
    let epochs = 10;
    for epoch in 0..epochs {
        let outcome = session.next_round()?;
        println!(
            "{:>5}  {:>9}  {:>11.0}  {:>12.0}  {:>10.3}",
            epoch,
            outcome
                .nodes
                .iter()
                .find_map(|n| n.aggregate)
                .map(|a| a.to_string())
                .unwrap_or_else(|| "-".into()),
            outcome.mean_latency_ms().unwrap_or(f64::NAN),
            outcome.mean_radio_on_ms(),
            outcome.mean_energy_mj(),
        );
    }

    let stats = session.stats();
    println!(
        "\n{} rounds, {} perfect; cumulative mean-node energy {:.1} mJ",
        stats.rounds, stats.perfect_rounds, stats.total_energy_mj
    );

    // Back-of-envelope lifetime: a CR2477 coin cell holds ~3.4 kJ. At one
    // aggregation epoch per 10 minutes the radio budget alone allows:
    let per_round = stats.total_energy_mj / stats.rounds as f64;
    let rounds_per_cell = 3_400_000.0 / per_round;
    let years = rounds_per_cell / (6.0 * 24.0 * 365.0);
    println!(
        "at 6 rounds/hour a CR2477 coin cell funds ≈ {years:.1} years of S4 aggregation radio time"
    );
    Ok(())
}
