//! A compact Fig. 1(c)/(d) campaign on the D-Cube model: S3 vs S4 over the
//! paper's source sweep on the 45-node interference-heavy testbed.
//!
//! ```text
//! cargo run --release --example dcube_campaign
//! ```
//!
//! `run_campaign` is built on the `Deployment` façade: one compiled
//! deployment shared by all worker threads, each streaming rounds into an
//! observer-attached accumulator.
#![deny(deprecated)] // examples demonstrate the current API only

use ppda_bench::{run_campaign, Protocol, TestbedSetup};
use ppda_metrics::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let setup = TestbedSetup::dcube();
    let topology = setup.topology();
    let iterations = 15;

    let mut table = Table::new(vec![
        "sources",
        "S3 latency ms",
        "S4 latency ms",
        "latency ratio",
        "S3 radio ms",
        "S4 radio ms",
        "radio ratio",
        "S4 success",
    ]);
    for &sources in &setup.source_sweep {
        let config = setup.config(sources)?;
        let s3 = run_campaign(Protocol::S3, &topology, &config, iterations, 11)?;
        let s4 = run_campaign(Protocol::S4, &topology, &config, iterations, 11)?;
        table.row(vec![
            sources.to_string(),
            format!("{:.0}", s3.latency_ms.mean()),
            format!("{:.0}", s4.latency_ms.mean()),
            format!("{:.1}x", s3.latency_ms.mean() / s4.latency_ms.mean()),
            format!("{:.0}", s3.radio_on_ms.mean()),
            format!("{:.0}", s4.radio_on_ms.mean()),
            format!("{:.1}x", s3.radio_on_ms.mean() / s4.radio_on_ms.mean()),
            format!("{:.2}", s4.node_success),
        ]);
    }
    println!(
        "D-Cube ({} nodes), degree {}, S4 NTX {}, {} iterations/point\n",
        topology.len(),
        topology.len() / 3,
        setup.s4_ntx,
        iterations
    );
    print!("{table}");
    println!(
        "\nD-Cube injects interference (modeled as round-scale fading); S4's\n\
         low-NTX rounds occasionally drop below the k+1 threshold in harsh\n\
         rounds — the efficiency/robustness trade-off the paper's NTX choice\n\
         navigates."
    );
    Ok(())
}
