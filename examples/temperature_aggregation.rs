//! A realistic smart-building scenario: compute the *average* office
//! temperature without any node (or the building operator) learning an
//! individual office's reading.
//!
//! This is the motivating use case of privacy-preserving data aggregation:
//! occupancy can be inferred from a single office's temperature trace, but
//! the building controller only needs the average.
//!
//! ```text
//! cargo run --release --example temperature_aggregation
//! ```
#![deny(deprecated)] // examples demonstrate the current API only

use ppda::field::Gf31;
use ppda::mpc::adversary::{consistent_polynomial, SecrecyAnalysis};
use ppda::prelude::*;
use ppda::sim::Xoshiro256;
use ppda::sss::split_secret;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topology = Topology::flocklab();
    let n = topology.len();

    // Temperatures in centi-degrees: 18.00 °C .. 26.00 °C.
    let mut rng = Xoshiro256::seed_from(2024);
    let readings: Vec<u64> = (0..n).map(|_| 1800 + rng.below(801)).collect();

    let config = ProtocolConfig::builder(n).max_reading(3000).build()?;
    let deployment = Deployment::builder()
        .topology(topology)
        .config(config.clone())
        .protocol(ProtocolKind::S4)
        .seed(42)
        .build()?;
    let report = deployment.driver().step_with(&readings, &vec![false; n])?;

    assert!(report.correct(), "aggregation must succeed");
    let sum = report.expected_sums()[0];
    println!("offices                : {n}");
    println!("true sum (hidden work) : {sum} c°C");
    println!(
        "average temperature    : {:.2} °C  — computed by every node",
        sum as f64 / n as f64 / 100.0
    );
    println!(
        "per-round cost         : {:.0} ms latency, {:.0} ms radio-on (mean)",
        report.outcome.mean_latency_ms().unwrap_or(f64::NAN),
        report.outcome.mean_radio_on_ms(),
    );

    // --- Why is this private? ---------------------------------------
    // The aggregator assignment is a compiled artifact of the deployment;
    // show that a collusion of `degree` aggregators can explain office
    // 3's share trail with *any* temperature whatsoever.
    let aggregators = deployment.plan().destinations().to_vec();
    let degree = config.degree;
    let colluders: Vec<u16> = aggregators[..degree].to_vec();
    let analysis = SecrecyAnalysis::new(degree, &aggregators, &colluders);
    println!(
        "\ncollusion of {} aggregators observes {} of office 3's {} shares → hidden: {}",
        colluders.len(),
        analysis.observed_points(),
        aggregators.len(),
        analysis.secret_hidden()
    );

    // Constructive indistinguishability: a freezing and a tropical office
    // both fit everything the colluders saw.
    let xs: Vec<Gf31> = aggregators
        .iter()
        .map(|&a| ppda::field::share_x::<ppda::field::Mersenne31>(a as usize))
        .collect();
    let shares = split_secret(Gf31::new(readings[3]), degree, &xs, &mut rng)?;
    let observed: Vec<_> = aggregators
        .iter()
        .zip(&shares)
        .filter(|(a, _)| colluders.contains(a))
        .map(|(_, &s)| s)
        .collect();
    for candidate in [0u64 /* 0.00 °C */, 4000 /* 40.00 °C */] {
        let poly = consistent_polynomial(Gf31::new(candidate), &observed, degree, &mut rng)
            .expect("candidate must be explainable");
        assert_eq!(poly.eval(Gf31::ZERO), Gf31::new(candidate));
        println!(
            "  office 3 at {:.2} °C? perfectly consistent with the colluders' view",
            candidate as f64 / 100.0
        );
    }
    Ok(())
}
