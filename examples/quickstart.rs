//! Quickstart: privately aggregate sensor readings over a simulated IoT
//! testbed in a dozen lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ppda::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 26-node multi-hop deployment modeled after FlockLab.
    let topology = Topology::flocklab();

    // Default configuration: every node contributes a reading, polynomial
    // degree ⌊n/3⌋ (the collusion threshold), AES-128-CCM share packets.
    let config = ProtocolConfig::builder(topology.len()).build()?;

    // Run one round of the scalable protocol (S4).
    let outcome = S4Protocol::new(config).run(&topology, 0xC0FFEE)?;

    println!("protocol          : {}", outcome.protocol);
    println!("nodes             : {}", outcome.nodes.len());
    println!("sources           : {}", outcome.source_count);
    println!("degree (threshold): {}", outcome.degree);
    println!("aggregators       : {}", outcome.aggregator_count);
    println!("expected sum      : {}", outcome.expected_sum);
    println!(
        "all nodes agree   : {} (correct: {})",
        outcome.all_nodes_agree(),
        outcome.correct()
    );
    if let Some(latency) = outcome.max_latency_ms() {
        println!("latency (worst)   : {latency:.1} ms");
    }
    println!("radio-on (mean)   : {:.1} ms", outcome.mean_radio_on_ms());

    // Every node independently computed the same aggregate — and no node
    // (nor any collusion of up to `degree` nodes) learned anyone's reading.
    let sample = outcome.nodes[0].aggregate.expect("node 0 finished");
    assert_eq!(sample, outcome.expected_sum);
    Ok(())
}
