//! Quickstart: privately aggregate sensor readings over a simulated IoT
//! testbed in a dozen lines — one `Deployment`, one driven round.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
#![deny(deprecated)] // examples demonstrate the current API only

use ppda::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 26-node multi-hop deployment modeled after FlockLab.
    let topology = Topology::flocklab();

    // Default configuration: every node contributes a reading, polynomial
    // degree ⌊n/3⌋ (the collusion threshold), AES-128-CCM share packets.
    let config = ProtocolConfig::builder(topology.len()).build()?;

    // Fuse topology + config + protocol once; the round plan (bootstrap,
    // chain schedules, cipher contexts) compiles here, not per round.
    let deployment = Deployment::builder()
        .topology(topology)
        .config(config)
        .protocol(ProtocolKind::S4)
        .seed(0xC0FFEE)
        .build()?;

    // Run one round of the scalable protocol (S4).
    let report = deployment.driver().step()?;
    let outcome = &report.outcome;

    println!("protocol          : {}", outcome.protocol);
    println!("nodes             : {}", outcome.nodes.len());
    println!("sources           : {}", outcome.source_count);
    println!("degree (threshold): {}", outcome.degree);
    println!("aggregators       : {}", outcome.aggregator_count);
    println!("expected sum      : {}", report.expected_sums()[0]);
    println!(
        "survivors         : {} of {} (recovered: {})",
        report.survivors().len(),
        outcome.aggregator_count,
        report.recovered()
    );
    println!("correct           : {}", report.correct());
    if let Some(latency) = outcome.max_latency_ms() {
        println!("latency (worst)   : {latency:.1} ms");
    }
    println!("radio-on (mean)   : {:.1} ms", outcome.mean_radio_on_ms());

    // Every node independently computed the same aggregate — and no node
    // (nor any collusion of up to `degree` nodes) learned anyone's reading.
    assert_eq!(report.aggregates(), Some(report.expected_sums()));
    Ok(())
}
