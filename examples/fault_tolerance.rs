//! Fault tolerance (paper §III): S4's any-(k+1) reconstruction survives
//! node crashes that break naive S3.
//!
//! We crash two designated aggregator nodes mid-deployment. S3's strict
//! all-to-all discipline means the dead nodes' sum shares never appear and
//! nodes wait in vain; S4 simply reconstructs from k+1 of the surviving
//! aggregators. Both variants run through the same `Deployment` façade —
//! only the `ProtocolKind` differs — and a `RoundRecorder` observer
//! collects the per-round trace instead of hand-threading outcomes.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```
#![deny(deprecated)] // examples demonstrate the current API only

use ppda::prelude::*;
use ppda::radio::FadingProfile;
use ppda_bench::RoundRecorder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topology = Topology::flocklab();
    let n = topology.len();
    // Half the nodes report readings; the other half only relay, so a
    // crash never removes a reading (that case trivially changes the sum).
    // Calm channel: this demo isolates crash-tolerance from fading effects
    // (the ablation_faults harness does the same).
    let config = ProtocolConfig::builder(n)
        .sources(n / 2)
        .fading(FadingProfile::none())
        .build()?;
    let readings: Vec<u64> = (0..n as u64 / 2).map(|i| 500 + 7 * i).collect();

    let deploy = |protocol| {
        Deployment::builder()
            .topology(topology.clone())
            .config(config.clone())
            .protocol(protocol)
            .build()
    };
    let s3 = deploy(ProtocolKind::S3)?;
    let s4 = deploy(ProtocolKind::S4)?;

    // Crash two aggregators that are not sources (the aggregator set is a
    // compiled artifact of the deployment).
    let aggregators = s4.plan().destinations().to_vec();
    let mut failed = vec![false; n];
    let mut crashed = Vec::new();
    for &a in &aggregators {
        if !config.sources.contains(&a) && crashed.len() < 2 {
            failed[a as usize] = true;
            crashed.push(a);
        }
    }
    println!("aggregator set: {aggregators:?}\ncrashed       : {crashed:?}\n");

    // Declared before the drivers so the observer borrow outlives them on
    // every exit path.
    let mut s4_trace = RoundRecorder::new();
    let mut s3_driver = s3.driver();
    let mut s4_driver = s4.driver();
    s4_driver.attach(&mut s4_trace);
    let success = |report: &RoundReport| {
        let live = report.outcome.live_nodes().count();
        let ok = report
            .outcome
            .live_nodes()
            .filter(|node| node.aggregates.as_deref() == Some(report.expected_sums()))
            .count();
        ok as f64 / live as f64
    };
    for _round in 0..3 {
        let s3_report = s3_driver.step_with(&readings, &failed)?;
        let s4_report = s4_driver.step_with(&readings, &failed)?;
        println!(
            "round {}: S3 success {:.2} | S4 success {:.2}, survivors {} (expected sum {})",
            s3_report.round_id,
            success(&s3_report),
            success(&s4_report),
            s4_report.survivors().len(),
            s4_report.expected_sums()[0],
        );
        assert!(
            success(&s4_report) > 0.9,
            "S4 must ride out two aggregator crashes"
        );
    }
    drop(s4_driver);

    println!(
        "\nS4 recovery rate over the trace: {:.2} ({} rounds recorded by the observer)",
        s4_trace.recovery_rate(),
        s4_trace.len()
    );
    println!("S4 reconstructed the aggregate from the surviving k+1 sum shares;");
    println!("naive S3 nodes waited for the crashed nodes' packets until the");
    println!("round schedule expired.");
    Ok(())
}
