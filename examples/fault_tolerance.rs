//! Fault tolerance (paper §III): S4's any-(k+1) reconstruction survives
//! node crashes that break naive S3.
//!
//! We crash two designated aggregator nodes mid-deployment. S3's strict
//! all-to-all discipline means the dead nodes' sum shares never appear and
//! nodes wait in vain; S4 simply reconstructs from k+1 of the surviving
//! aggregators.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use ppda::mpc::{Bootstrap, ProtocolConfig, S3Protocol, S4Protocol};
use ppda::radio::FadingProfile;
use ppda::topology::Topology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topology = Topology::flocklab();
    let n = topology.len();
    // Half the nodes report readings; the other half only relay, so a
    // crash never removes a reading (that case trivially changes the sum).
    // Calm channel: this demo isolates crash-tolerance from fading effects
    // (the ablation_faults harness does the same).
    let config = ProtocolConfig::builder(n)
        .sources(n / 2)
        .fading(FadingProfile::none())
        .build()?;
    let readings: Vec<u64> = (0..n as u64 / 2).map(|i| 500 + 7 * i).collect();

    // Crash two aggregators that are not sources.
    let bootstrap = Bootstrap::run(&topology, &config)?;
    let mut failed = vec![false; n];
    let mut crashed = Vec::new();
    for &a in bootstrap.aggregators() {
        if !config.sources.contains(&a) && crashed.len() < 2 {
            failed[a as usize] = true;
            crashed.push(a);
        }
    }
    println!(
        "aggregator set: {:?}\ncrashed       : {crashed:?}\n",
        bootstrap.aggregators()
    );

    for seed in [1u64, 2, 3] {
        let s3 = S3Protocol::new(config.clone()).run_with(&topology, seed, &readings, &failed)?;
        let s4 = S4Protocol::new(config.clone()).run_with(&topology, seed, &readings, &failed)?;
        println!(
            "seed {seed}: S3 success {:.2} | S4 success {:.2}  (expected sum {})",
            s3.success_fraction(),
            s4.success_fraction(),
            s4.expected_sum
        );
        assert!(
            s4.success_fraction() > 0.9,
            "S4 must ride out two aggregator crashes"
        );
    }

    println!("\nS4 reconstructed the aggregate from the surviving k+1 sum shares;");
    println!("naive S3 nodes waited for the crashed nodes' packets until the");
    println!("round schedule expired.");
    Ok(())
}
