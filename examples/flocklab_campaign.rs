//! A compact Fig. 1(a)/(b) campaign on the FlockLab model: S3 vs S4 over
//! the paper's source sweep, with mean latency and radio-on time per point.
//!
//! (The full harness with CLI flags and both testbeds is
//! `cargo run -p ppda-bench --release --bin fig1`.)
//!
//! ```text
//! cargo run --release --example flocklab_campaign
//! ```
//!
//! `run_campaign` is built on the `Deployment` façade: one compiled
//! deployment shared by all worker threads, each streaming rounds into an
//! observer-attached accumulator.
#![deny(deprecated)] // examples demonstrate the current API only

use ppda_bench::{run_campaign, Protocol, TestbedSetup};
use ppda_metrics::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let setup = TestbedSetup::flocklab();
    let topology = setup.topology();
    let iterations = 25;

    let mut table = Table::new(vec![
        "sources",
        "S3 latency ms",
        "S4 latency ms",
        "latency ratio",
        "S3 radio ms",
        "S4 radio ms",
        "radio ratio",
    ]);
    for &sources in &setup.source_sweep {
        let config = setup.config(sources)?;
        let s3 = run_campaign(Protocol::S3, &topology, &config, iterations, 7)?;
        let s4 = run_campaign(Protocol::S4, &topology, &config, iterations, 7)?;
        table.row(vec![
            sources.to_string(),
            format!("{:.0}", s3.latency_ms.mean()),
            format!("{:.0}", s4.latency_ms.mean()),
            format!("{:.1}x", s3.latency_ms.mean() / s4.latency_ms.mean()),
            format!("{:.0}", s3.radio_on_ms.mean()),
            format!("{:.0}", s4.radio_on_ms.mean()),
            format!("{:.1}x", s3.radio_on_ms.mean() / s4.radio_on_ms.mean()),
        ]);
    }
    println!(
        "FlockLab ({} nodes), degree {}, S4 NTX {}, {} iterations/point\n",
        topology.len(),
        topology.len() / 3,
        setup.s4_ntx,
        iterations
    );
    print!("{table}");
    Ok(())
}
