//! Cross-crate integration tests: full protocol rounds on both testbed
//! models, exercising field + crypto + sim + radio + topology + ct + sss +
//! mpc together.
#![allow(deprecated)] // this suite exercises the legacy single-shot oracle

use ppda::mpc::{ProtocolConfig, S3Protocol, S4Protocol};
use ppda::topology::Topology;
use ppda_testkit::flocklab_scenario;

#[test]
fn s3_correct_on_flocklab() {
    let (t, config) = flocklab_scenario();
    for seed in 0..5 {
        let o = S3Protocol::new(config.clone()).run(&t, seed).unwrap();
        assert!(o.correct(), "seed {seed}");
        assert!(o.all_nodes_agree());
        assert_eq!(o.protocol, "S3");
    }
}

#[test]
fn s4_correct_on_flocklab() {
    let (t, config) = flocklab_scenario();
    for seed in 0..5 {
        let o = S4Protocol::new(config.clone()).run(&t, seed).unwrap();
        assert!(o.correct(), "seed {seed}");
        assert_eq!(o.protocol, "S4");
    }
}

#[test]
fn s3_correct_on_dcube() {
    let t = Topology::dcube();
    let config = ProtocolConfig::builder(t.len())
        .full_coverage_ntx(20)
        .build()
        .unwrap();
    let o = S3Protocol::new(config).run(&t, 3).unwrap();
    assert!(o.correct());
}

#[test]
fn s4_correct_on_dcube_at_operating_ntx() {
    let t = Topology::dcube();
    let config = ProtocolConfig::builder(t.len())
        .ntx_sharing(7)
        .ntx_reconstruction(7)
        .build()
        .unwrap();
    // D-Cube injects interference (modeled as round-scale fading); the
    // operating point trades occasional harsh-round misses for a ~9x
    // speed-up, so expect most — not all — rounds to be perfect.
    let mut ok = 0;
    let runs = 8;
    for seed in 0..runs {
        if S4Protocol::new(config.clone())
            .run(&t, seed)
            .unwrap()
            .correct()
        {
            ok += 1;
        }
    }
    assert!(ok > runs / 2, "only {ok}/{runs} rounds fully correct");
}

#[test]
fn s4_beats_s3_on_both_metrics() {
    let (t, config) = flocklab_scenario();
    let s3 = S3Protocol::new(config.clone()).run(&t, 9).unwrap();
    let s4 = S4Protocol::new(config).run(&t, 9).unwrap();
    let lat3 = s3.max_latency_ms().expect("S3 completes");
    let lat4 = s4.max_latency_ms().expect("S4 completes");
    assert!(
        lat3 > 3.0 * lat4,
        "paper claims ≥6x at full network; got S3 {lat3:.0} vs S4 {lat4:.0}"
    );
    assert!(s3.mean_radio_on_ms() > 3.0 * s4.mean_radio_on_ms());
}

#[test]
fn outcomes_are_deterministic() {
    let t = Topology::flocklab();
    let config = ProtocolConfig::builder(t.len()).sources(6).build().unwrap();
    let a = S4Protocol::new(config.clone()).run(&t, 77).unwrap();
    let b = S4Protocol::new(config).run(&t, 77).unwrap();
    assert_eq!(a.expected_sum, b.expected_sum);
    for (x, y) in a.nodes.iter().zip(&b.nodes) {
        assert_eq!(x.aggregate, y.aggregate);
        assert_eq!(x.latency, y.latency);
        assert_eq!(x.radio_on, y.radio_on);
    }
}

#[test]
fn different_seeds_different_readings() {
    let (t, config) = flocklab_scenario();
    let a = S4Protocol::new(config.clone()).run(&t, 1).unwrap();
    let b = S4Protocol::new(config).run(&t, 2).unwrap();
    assert_ne!(a.expected_sum, b.expected_sum);
}

#[test]
fn explicit_readings_are_summed() {
    let t = Topology::flocklab();
    let n = t.len();
    let config = ProtocolConfig::builder(n).sources(4).build().unwrap();
    let secrets = [10u64, 20, 30, 40];
    let o = S4Protocol::new(config)
        .run_with(&t, 5, &secrets, &vec![false; n])
        .unwrap();
    assert_eq!(o.expected_sum, 100);
    assert!(o.correct());
}

#[test]
fn source_sweep_points_all_run() {
    let t = Topology::flocklab();
    for sources in [3usize, 6, 10, 24] {
        let config = ProtocolConfig::builder(t.len())
            .sources(sources)
            .build()
            .unwrap();
        let o = S4Protocol::new(config).run(&t, 13).unwrap();
        assert!(o.correct(), "{sources} sources");
        assert_eq!(o.source_count, sources);
    }
}

#[test]
fn latency_grows_with_sources() {
    let t = Topology::flocklab();
    let run = |sources: usize| {
        let config = ProtocolConfig::builder(t.len())
            .sources(sources)
            .build()
            .unwrap();
        S4Protocol::new(config)
            .run(&t, 21)
            .unwrap()
            .max_latency_ms()
            .expect("completes")
    };
    let small = run(3);
    let large = run(24);
    assert!(
        large > 2.0 * small,
        "chain length scales with sources: {small:.0} vs {large:.0}"
    );
}

#[test]
fn failed_source_excluded_from_sum() {
    let t = Topology::flocklab();
    let n = t.len();
    let config = ProtocolConfig::builder(n)
        .sources_explicit(vec![0, 5, 10])
        .build()
        .unwrap();
    let mut failed = vec![false; n];
    failed[5] = true;
    let o = S4Protocol::new(config)
        .run_with(&t, 31, &[100, 200, 300], &failed)
        .unwrap();
    assert_eq!(o.expected_sum, 400, "dead source's reading must not count");
    assert!(o.success_fraction() > 0.9);
}

#[test]
fn radio_on_is_positive_and_bounded_by_schedule() {
    let (t, config) = flocklab_scenario();
    let o = S4Protocol::new(config).run(&t, 41).unwrap();
    let budget = o.scheduled_round_ms();
    for node in o.live_nodes() {
        let on = node.radio_on.as_millis_f64();
        assert!(on > 0.0);
        assert!(
            on <= budget * 1.01,
            "radio-on {on} exceeds schedule {budget}"
        );
    }
}

#[test]
fn phase_stats_are_consistent() {
    let (t, config) = flocklab_scenario();
    let o = S4Protocol::new(config.clone()).run(&t, 51).unwrap();
    // Sharing chain: S sources × (|A| − (1 if source is aggregator)).
    assert!(o.sharing.chain_len > 0);
    assert!(o.sharing.chain_len <= o.source_count * o.aggregator_count);
    assert_eq!(o.reconstruction.chain_len, o.aggregator_count);
    assert!(o.sharing.coverage > 0.5);
    // S4 chains are trimmed versus the naive S × n layout.
    let s3 = S3Protocol::new(config).run(&t, 51).unwrap();
    assert!(s3.sharing.chain_len > 2 * o.sharing.chain_len);
    assert_eq!(s3.aggregator_count, t.len());
}
