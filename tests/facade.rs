//! The `Deployment` façade's conformance suite.
//!
//! Contracts enforced here:
//!
//! 1. **The driver subsumes the legacy paths byte for byte** — a B = 1
//!    driver round under the default zero fault plan produces an
//!    `AggregationOutcome` *equal* to the deprecated `S3Protocol::run` /
//!    `S4Protocol::run` single-shot oracles, on both testbed topologies,
//!    with and without explicit inputs — the acceptance differential of
//!    the API redesign.
//! 2. **One pipeline, every scenario** — batching, fault plans and churn
//!    all flow through the same `step()`; observers see every round; the
//!    driver clock replays the session scheme exactly.
//! 3. **The report format is frozen** — a golden fixture pins
//!    `RoundReport`'s `Display` text alongside the degraded-outcome
//!    fixtures.
//! 4. **Error-type hygiene** — every public error type in the workspace
//!    implements `Display + std::error::Error + Send + Sync`.

#![allow(deprecated)] // the legacy single-shot wrappers are the oracle here

use ppda::mpc::{
    Deployment, MpcError, ProtocolConfig, ProtocolKind, RecoveryStatus, RoundObserver, RoundReport,
    S3Protocol, S4Protocol,
};
use ppda::prelude::FaultPlan;
use ppda::topology::Topology;
use ppda_metrics::CampaignAccumulator;
use ppda_testkit::{grid9_deployment, lossy_flocklab_deployment};

fn testbeds() -> Vec<(Topology, ProtocolConfig)> {
    let flocklab = Topology::flocklab();
    let dcube = Topology::dcube();
    let flocklab_config = ProtocolConfig::builder(flocklab.len())
        .sources(6)
        .build()
        .unwrap();
    let dcube_config = ProtocolConfig::builder(dcube.len())
        .sources(7)
        .ntx_sharing(7)
        .ntx_reconstruction(7)
        .build()
        .unwrap();
    vec![(flocklab, flocklab_config), (dcube, dcube_config)]
}

/// The acceptance differential: a zero-fault B = 1 driver round equals
/// the legacy single-shot protocol runs, field for field, for both
/// protocols on both testbeds.
#[test]
fn driver_rounds_are_byte_identical_to_legacy_single_shot() {
    for (topology, config) in testbeds() {
        for kind in [ProtocolKind::S3, ProtocolKind::S4] {
            let deployment = Deployment::builder()
                .topology_ref(&topology)
                .config(config.clone())
                .protocol(kind)
                .build()
                .unwrap();
            let mut driver = deployment.driver();
            for seed in [1u64, 7, 42, 0xBEEF] {
                let report = driver.round_at(config.round_id, seed).unwrap();
                assert!(report.recovered(), "zero-fault rounds always recover");
                let via_driver = report.into_scalar().unwrap().round;
                let legacy = match kind {
                    ProtocolKind::S3 => S3Protocol::new(config.clone()).run(&topology, seed),
                    ProtocolKind::S4 => S4Protocol::new(config.clone()).run(&topology, seed),
                }
                .unwrap();
                assert_eq!(
                    via_driver,
                    legacy,
                    "{} on {} diverged from the legacy path at seed {seed}",
                    kind.name(),
                    topology.name()
                );
            }
        }
    }
}

#[test]
fn driver_rounds_match_legacy_under_explicit_inputs_and_failures() {
    for (topology, config) in testbeds() {
        let n = topology.len();
        let secrets: Vec<u64> = (0..config.sources.len() as u64).map(|i| 100 + i).collect();
        let mut failed = vec![false; n];
        failed[1] = true;
        failed[n - 1] = true;
        for kind in [ProtocolKind::S3, ProtocolKind::S4] {
            let deployment = Deployment::builder()
                .topology_ref(&topology)
                .config(config.clone())
                .protocol(kind)
                .build()
                .unwrap();
            let mut driver = deployment.driver();
            for seed in [3u64, 19] {
                let via_driver = driver
                    .round_at_with(config.round_id, seed, &secrets, &failed)
                    .unwrap()
                    .into_scalar()
                    .unwrap()
                    .round;
                let legacy =
                    match kind {
                        ProtocolKind::S3 => S3Protocol::new(config.clone())
                            .run_with(&topology, seed, &secrets, &failed),
                        ProtocolKind::S4 => S4Protocol::new(config.clone())
                            .run_with(&topology, seed, &secrets, &failed),
                    }
                    .unwrap();
                assert_eq!(
                    via_driver,
                    legacy,
                    "{} on {} diverged under failures at seed {seed}",
                    kind.name(),
                    topology.name()
                );
            }
        }
    }
}

/// The driver's automatic clock replays the session scheme: round r at
/// `round_id + r` with seed `derive_stream(base, r)` — so stepped rounds
/// equal legacy single-shot runs configured at those coordinates.
#[test]
fn driver_clock_matches_legacy_at_advanced_round_ids() {
    for (topology, config) in testbeds() {
        let deployment = Deployment::builder()
            .topology_ref(&topology)
            .config(config.clone())
            .protocol(ProtocolKind::S4)
            .seed(0xFEED)
            .build()
            .unwrap();
        let mut driver = deployment.driver();
        for epoch in 0..3u64 {
            let report = driver.step().unwrap();
            let mut epoch_config = config.clone();
            epoch_config.round_id = config.round_id + epoch as u32;
            let seed = ppda::sim::derive_stream(0xFEED, epoch);
            assert_eq!(report.seed, seed);
            let legacy = S4Protocol::new(epoch_config).run(&topology, seed).unwrap();
            assert_eq!(
                report.into_scalar().unwrap().round,
                legacy,
                "epoch {epoch} on {} diverged",
                topology.name()
            );
        }
    }
}

/// Batched rounds flow through the same single path: a 4-lane driver
/// round equals the executor-level batched round (and its transport/
/// survivor behaviour is lane-width-agnostic).
#[test]
fn batched_driver_rounds_take_the_same_path() {
    let (topology, mut config) = testbeds().remove(0);
    config.batch = 4;
    let deployment = Deployment::builder()
        .topology_ref(&topology)
        .config(config.clone())
        .protocol(ProtocolKind::S4)
        .build()
        .unwrap();
    let plan = ppda::mpc::RoundPlan::new(&topology, &config, ProtocolKind::S4).unwrap();
    let mut executor = plan.executor();
    let mut driver = deployment.driver();
    for seed in [2u64, 9, 33] {
        let via_driver = driver.round_at(config.round_id, seed).unwrap();
        let via_executor = executor.run_degraded(seed, &FaultPlan::none()).unwrap();
        assert_eq!(via_driver.outcome, via_executor.round, "seed {seed}");
        assert_eq!(via_driver.lanes(), 4);
    }
}

/// An attached accumulator observes exactly what a hand-threaded harness
/// would have recorded.
#[test]
fn campaign_accumulator_subscribes_to_the_driver() {
    let deployment = lossy_flocklab_deployment(6, 0.25);
    let mut acc = CampaignAccumulator::new();
    let reports: Vec<RoundReport> = {
        let mut driver = deployment.driver();
        driver.attach(&mut acc);
        (0..6).map(|_| driver.step().unwrap()).collect()
    };
    assert_eq!(acc.rounds(), 6);
    let recovered = reports.iter().filter(|r| r.recovered()).count() as u64;
    assert_eq!(acc.rounds_recovered(), recovered);
    let live_nodes: usize = reports.iter().map(|r| r.outcome.live_nodes().count()).sum();
    assert_eq!(acc.radio_on().len(), live_nodes);
    let perfect = reports.iter().filter(|r| r.correct()).count();
    assert_eq!(acc.round_success(), perfect as f64 / 6.0);
}

/// Fused fault plans and the driver's availability stats: a lossy
/// deployment reports recovery like the campaign layer does.
#[test]
fn fused_fault_plans_shape_driver_stats() {
    let deployment = lossy_flocklab_deployment(24, 0.3);
    let mut driver = deployment.driver();
    let epoch = driver.run_epoch(6).unwrap();
    assert_eq!(epoch.rounds, 6);
    assert_eq!(epoch.recovered_rounds + epoch.failed_rounds, 6);
    // Determinism across drivers of the same deployment.
    let again = deployment.driver().run_epoch(6).unwrap();
    assert_eq!(epoch, again);
}

/// `RoundReport::Display` is frozen by a golden fixture, alongside the
/// degraded-outcome fixtures (same regeneration contract:
/// `GOLDEN_REGEN=1`).
#[test]
fn golden_round_report_display() {
    let deployment = lossy_flocklab_deployment(6, 0.3);
    let report = deployment.driver().step().unwrap();
    assert_golden("round_report.txt", &report.to_string());
}

fn assert_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "round report format drifted from {}; if intentional, regenerate with GOLDEN_REGEN=1",
        path.display()
    );
}

/// Observer fan-out and iterator streaming compose.
#[test]
fn observers_and_iterator_compose() {
    struct Margins(Vec<Option<usize>>);
    impl RoundObserver for Margins {
        fn on_round(&mut self, report: &RoundReport) {
            self.0.push(match report.recovery() {
                RecoveryStatus::Recovered { margin } => Some(margin),
                RecoveryStatus::Failed { .. } => None,
                _ => None, // non_exhaustive: future verdicts
            });
        }
    }
    let deployment = grid9_deployment(ProtocolKind::S4);
    let mut margins = Margins(Vec::new());
    let mut driver = deployment.driver();
    driver.attach(&mut margins);
    // `take` consumes the driver; the observer borrow ends with it.
    let reports: Vec<RoundReport> = driver.take(3).collect::<Result<_, _>>().unwrap();
    assert_eq!(margins.0.len(), 3);
    for (report, margin) in reports.iter().zip(&margins.0) {
        assert_eq!(report.degraded.margin(), *margin);
    }
}

/// Every public error type in the workspace is a well-behaved
/// `std::error::Error`: Display, source chaining, Send + Sync — the audit
/// the API redesign demands before anything lands in `#[non_exhaustive]`
/// signatures.
#[test]
fn public_error_types_are_well_behaved() {
    fn well_behaved<E: std::error::Error + std::fmt::Display + Send + Sync + 'static>(e: E) {
        assert!(!e.to_string().is_empty());
    }
    well_behaved(MpcError::TopologyDisconnected);
    well_behaved(MpcError::BatchTooWide {
        lanes: 64,
        max_lanes: 23,
    });
    well_behaved(ppda::sss::SssError::InconsistentShares);
    well_behaved(ppda::field::FieldError::ZeroAbscissa);
    well_behaved(ppda::crypto::CryptoError::AuthenticationFailed);
    well_behaved(ppda::ct::ChainError::Empty);
    well_behaved(
        ppda::radio::FrameSpec::new(200, 4).expect_err("200-byte payload overflows the PSDU"),
    );
    // And the MpcError source chain survives the façade boundary.
    let err = Deployment::builder().build().unwrap_err();
    let boxed: Box<dyn std::error::Error> = Box::new(err);
    assert!(boxed.to_string().contains("topology"));
}

/// The builder rejects incomplete or impossible deployments with typed
/// errors at build time — nothing defers to the first round.
#[test]
fn deployment_build_time_validation() {
    assert!(matches!(
        Deployment::builder().build(),
        Err(MpcError::InvalidConfig { .. })
    ));
    // Lane widths that overflow the 802.15.4 frame budget die in the
    // config builder, before a deployment is even attempted.
    assert!(matches!(
        ProtocolConfig::builder(26).batch(64).build(),
        Err(MpcError::BatchTooWide { .. })
    ));
}
