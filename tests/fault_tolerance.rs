//! Fault-tolerant rounds: the differential conformance suite.
//!
//! Three contracts are enforced here:
//!
//! 1. **Zero-fault plans are byte-identical to the plain executor** — for
//!    every (topology, protocol, lane width) combination, running a round
//!    through the degraded path with [`FaultPlan::none`] produces exactly
//!    the outcome structure the fault-free path produces.
//! 2. **Threshold-degraded reconstruction is exact** — any survivor set
//!    of size ≥ t+1 reconstructs the same aggregate as the full set
//!    (exhaustively at the SSS layer, and proptested over seeded fault
//!    plans at the protocol layer), and below-threshold rounds report
//!    [`RecoveryStatus::Failed`] / [`MpcError::AggregationFailed`] —
//!    never a wrong aggregate, never a panic.
//! 3. **The degraded outcome format is frozen** — golden fixtures under
//!    `tests/golden/` pin the report text for a recovered lossy round and
//!    a below-threshold failure (regenerate with `GOLDEN_REGEN=1`).

use ppda::mpc::{FaultPlan, MpcError, ProtocolConfig, ProtocolKind, RecoveryStatus, RoundPlan};
use ppda::topology::Topology;
use ppda_bench::{run_campaign_faulty, Protocol};
use ppda_testkit::{churn, grid9, grid9_config, lossy_flocklab};
use proptest::prelude::*;

/// Compare `actual` against the committed fixture, or rewrite it when
/// `GOLDEN_REGEN=1` is set (same contract as `tests/wire_formats.rs`).
fn assert_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "degraded outcome format drifted from {}; if intentional, regenerate with GOLDEN_REGEN=1",
        path.display()
    );
}

fn testbeds() -> Vec<(Topology, ProtocolConfig)> {
    let flocklab = Topology::flocklab();
    let dcube = Topology::dcube();
    let flocklab_config = ProtocolConfig::builder(flocklab.len())
        .sources(6)
        .build()
        .unwrap();
    let dcube_config = ProtocolConfig::builder(dcube.len())
        .sources(7)
        .ntx_sharing(7)
        .ntx_reconstruction(7)
        .build()
        .unwrap();
    vec![(flocklab, flocklab_config), (dcube, dcube_config)]
}

#[test]
fn zero_fault_plan_is_byte_identical_to_plain_executor() {
    // The core differential: every (topology, protocol, B ∈ {1, 4})
    // combination, plain vs degraded-with-zero-plan, field for field.
    let none = FaultPlan::none();
    for (topology, base_config) in testbeds() {
        for kind in [ProtocolKind::S3, ProtocolKind::S4] {
            for lanes in [1usize, 4] {
                let mut config = base_config.clone();
                config.batch = lanes;
                let plan = RoundPlan::new(&topology, &config, kind).unwrap();
                let mut plain = plan.executor();
                let mut degraded = plan.executor();
                for seed in [1u64, 7, 42, 0xBEEF] {
                    let a = plain.run(seed).unwrap();
                    let b = degraded.run_degraded(seed, &none).unwrap();
                    assert_eq!(
                        a,
                        b.round,
                        "{} on {} with B={lanes} diverged at seed {seed}",
                        kind.name(),
                        topology.name()
                    );
                    // And the report confirms nothing was injected.
                    assert!(b.degraded.recovered());
                    assert_eq!(b.degraded.faults.nodes_dropped, 0);
                    assert_eq!(b.degraded.faults.shares_delayed, 0);
                    assert_eq!(b.degraded.faults.sums_delayed, 0);
                    assert_eq!(b.degraded.faults.duplicates, 0);
                }
            }
        }
    }
}

#[test]
fn zero_fault_plan_matches_the_scalar_reference_path() {
    // B = 1 through the degraded path still equals RoundPlan::run_epoch —
    // the chain plain-scalar ≡ plain-executor ≡ degraded-executor holds
    // end to end.
    let none = FaultPlan::none();
    for (topology, config) in testbeds() {
        for kind in [ProtocolKind::S3, ProtocolKind::S4] {
            let plan = RoundPlan::new(&topology, &config, kind).unwrap();
            let mut executor = plan.executor();
            for seed in [3u64, 19] {
                let scalar = plan.run(seed).unwrap();
                let degraded = executor
                    .run_degraded(seed, &none)
                    .unwrap()
                    .into_scalar()
                    .unwrap();
                assert_eq!(
                    scalar,
                    degraded.round,
                    "{} on {} diverged at seed {seed}",
                    kind.name(),
                    topology.name()
                );
            }
        }
    }
}

#[test]
fn every_threshold_survivor_subset_reconstructs_the_full_aggregate() {
    // The fault-tolerance algebra, exhaustively: build the real S4 sum
    // shares of a round (all destinations), then check that *every*
    // (t+1)-subset of survivors reconstructs the same aggregate.
    use ppda::field::{share_x, Gf31, Mersenne31};
    use ppda::sss::{split_secret, SumAccumulator, WeightCache};
    use ppda_testkit::aggregator_setup;

    let topology = Topology::flocklab();
    let (config, aggregators) = aggregator_setup(&topology);
    let k = config.degree;
    let xs: Vec<Gf31> = aggregators
        .iter()
        .map(|&d| share_x::<Mersenne31>(d as usize))
        .collect();
    let readings: Vec<u64> = (0..10u64).map(|i| 500 + 13 * i).collect();
    let expected: u64 = readings.iter().sum();

    let mut rng = ppda_testkit::rng(0xF417);
    let mut holders: Vec<SumAccumulator<Mersenne31>> =
        xs.iter().map(|&x| SumAccumulator::new(x)).collect();
    for (src, &r) in readings.iter().enumerate() {
        let shares = split_secret(Gf31::new(r), k, &xs, &mut rng).unwrap();
        for (holder, share) in holders.iter_mut().zip(shares) {
            holder.add(src as u16, share.y).unwrap();
        }
    }
    let sums: Vec<Gf31> = holders.iter().map(|h| h.share().y).collect();

    let mut cache = WeightCache::new(&xs, k + 1).unwrap();
    let m = xs.len();
    let mut checked = 0usize;
    for mask in 1u128..(1 << m) {
        if mask.count_ones() as usize != k + 1 {
            continue;
        }
        let survivors = cache.survivor_xs(mask).unwrap();
        let weights = cache.weights(mask).unwrap();
        let value: Gf31 = survivors
            .iter()
            .zip(weights)
            .map(|(&x, &w)| {
                let i = xs.iter().position(|&p| p == x).unwrap();
                sums[i] * w
            })
            .sum();
        assert_eq!(value, Gf31::new(expected), "survivor mask {mask:#b}");
        checked += 1;
    }
    // 11 aggregators choose 9 on FlockLab: 55 distinct survivor sets.
    assert!(checked > 50, "only {checked} subsets checked");
}

#[test]
fn below_threshold_rounds_fail_typed_not_wrong() {
    // Take enough aggregators down (via churn, deterministically) that
    // the survivor set cannot reach the threshold: the round must report
    // AggregationFailed — and no live node may hold *any* aggregate.
    let topology = grid9();
    let config = grid9_config().sources(4).build().unwrap();
    let plan = RoundPlan::new(&topology, &config, ProtocolKind::S4).unwrap();
    let threshold = plan.threshold();
    let destinations = plan.destinations().to_vec();
    // Kill all but threshold-1 aggregators for this round id.
    let round_id = config.round_id;
    let victims = &destinations[..destinations.len() - (threshold - 1)];
    let windows: Vec<(u16, u32, u32)> = victims
        .iter()
        .map(|&d| (d, round_id, round_id + 1))
        .collect();
    let faults = churn(&windows);

    let mut executor = plan.executor();
    let out = executor.run_degraded(5, &faults).unwrap();
    assert!(!out.degraded.recovered());
    assert!(matches!(
        out.degraded.recovery,
        RecoveryStatus::Failed { missing: 1 }
    ));
    assert!(matches!(
        out.degraded.require_recovered(),
        Err(MpcError::AggregationFailed { missing: 1 })
    ));
    assert_eq!(out.degraded.survivors.len(), threshold - 1);
    assert_eq!(out.degraded.nodes_recovered, 0);
    for node in out.round.live_nodes() {
        assert_eq!(
            node.aggregates, None,
            "below the threshold nothing may reconstruct"
        );
    }
}

#[test]
fn degraded_campaign_at_twenty_percent_loss_recovers() {
    // The acceptance sweep point: FlockLab, S4, 24 sources, 20% link
    // loss. The campaign must complete with a positive recovery rate and
    // without ever producing a wrong aggregate (node_success counts only
    // exact full aggregates; failures show up as missing, not wrong).
    let (topology, config, faults) = lossy_flocklab(24, 0.2);
    let result = run_campaign_faulty(Protocol::S4, &topology, &config, 8, 0x5EED, &faults).unwrap();
    assert_eq!(result.rounds, 8);
    assert!(
        result.recovery_rate > 0.0,
        "20% loss must leave recoverable rounds, got rate {}",
        result.recovery_rate
    );
    assert_eq!(
        result.margin.len() + result.rounds_failed,
        8,
        "every round is recovered-with-margin or failed"
    );
    // Determinism of the whole degraded campaign path.
    let again = run_campaign_faulty(Protocol::S4, &topology, &config, 8, 0x5EED, &faults).unwrap();
    assert_eq!(result.recovery_rate, again.recovery_rate);
    assert_eq!(result.node_success, again.node_success);
}

#[test]
fn golden_degraded_outcome_recovered() {
    // Freeze the degraded outcome text format on a seeded lossy round.
    let (topology, config, faults) = lossy_flocklab(6, 0.3);
    let plan = RoundPlan::new(&topology, &config, ProtocolKind::S4).unwrap();
    let out = plan.executor().run_degraded(11, &faults).unwrap();
    let text = format!(
        "protocol {} testbed {} lanes {}\n{}",
        out.round.protocol,
        topology.name(),
        out.round.lanes,
        out.degraded
    );
    assert_golden("degraded_outcome.txt", &text);
}

#[test]
fn golden_degraded_outcome_below_threshold() {
    // The below-threshold failure case, frozen: grid9 S4 with churn
    // removing all but t-1 aggregators.
    let topology = grid9();
    let config = grid9_config().sources(4).build().unwrap();
    let plan = RoundPlan::new(&topology, &config, ProtocolKind::S4).unwrap();
    let destinations = plan.destinations().to_vec();
    let round_id = config.round_id;
    let windows: Vec<(u16, u32, u32)> = destinations[..destinations.len() - (plan.threshold() - 1)]
        .iter()
        .map(|&d| (d, round_id, round_id + 1))
        .collect();
    let out = plan.executor().run_degraded(5, &churn(&windows)).unwrap();
    let text = format!(
        "protocol {} testbed grid9 lanes {}\n{}",
        out.round.protocol, out.round.lanes, out.degraded
    );
    assert_golden("degraded_failure.txt", &text);
}

#[test]
fn batched_lanes_take_the_same_degraded_path() {
    // B = 4 under loss: the transport, survivor set and fault report are
    // lane-independent (the lanes travel together), and every node that
    // recovered holds all four correct lane aggregates.
    let (topology, mut config, faults) = lossy_flocklab(6, 0.25);
    config.batch = 4;
    let plan = RoundPlan::new(&topology, &config, ProtocolKind::S4).unwrap();
    let scalar_plan = {
        let mut c = config.clone();
        c.batch = 1;
        RoundPlan::new(&topology, &c, ProtocolKind::S4).unwrap()
    };
    let mut batched = plan.executor();
    let mut scalar = scalar_plan.executor();
    for seed in [2u64, 9, 33] {
        let b = batched.run_degraded(seed, &faults).unwrap();
        let s = scalar.run_degraded(seed, &faults).unwrap();
        // Same fault realization and survivor set regardless of B: the
        // degraded path is lane-width-agnostic.
        assert_eq!(b.degraded.survivors, s.degraded.survivors, "seed {seed}");
        assert_eq!(b.degraded.recovery, s.degraded.recovery, "seed {seed}");
        assert_eq!(
            b.degraded.faults.nodes_dropped, s.degraded.faults.nodes_dropped,
            "seed {seed}"
        );
        assert_eq!(b.round.lanes, 4);
        for node in b.round.live_nodes() {
            if let Some(aggs) = &node.aggregates {
                if node.included_sources as usize == config.sources.len() {
                    assert_eq!(aggs, &b.round.expected_sums, "seed {seed}");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Over seeded fault plans: degraded rounds never panic, never emit a
    /// wrong full aggregate, and classify recovery exactly by the
    /// survivor count vs the threshold.
    #[test]
    fn degraded_rounds_are_sound_under_random_faults(
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        loss_pct in 0u32..50,
        dropout_pct in 0u32..30,
    ) {
        let topology = grid9();
        let config = grid9_config().sources(5).build().unwrap();
        let plan = RoundPlan::new(&topology, &config, ProtocolKind::S4).unwrap();
        let mut executor = plan.executor();
        let faults = FaultPlan::lossy(fault_seed, loss_pct as f64 / 100.0)
            .with_dropout(dropout_pct as f64 / 100.0);
        let out = executor.run_degraded(seed, &faults).unwrap();

        let threshold = plan.threshold();
        match out.degraded.recovery {
            RecoveryStatus::Recovered { margin } => {
                prop_assert_eq!(out.degraded.survivors.len(), threshold + margin);
            }
            RecoveryStatus::Failed { missing } => {
                prop_assert_eq!(out.degraded.survivors.len() + missing, threshold);
                prop_assert_eq!(out.degraded.nodes_recovered, 0);
            }
            status => prop_assert!(false, "unknown recovery verdict {status:?}"),
        }
        // Live sources this round (the fault plan may have dropped some).
        let live_sources = out.round.source_count
            - out.round.nodes.iter().enumerate()
                .filter(|&(v, n)| n.failed && config.sources.contains(&(v as u16)))
                .count();
        for node in out.round.live_nodes() {
            if let Some(aggs) = &node.aggregates {
                // A full-coverage aggregate must be *the* aggregate.
                if node.included_sources as usize == live_sources {
                    prop_assert_eq!(aggs, &out.round.expected_sums);
                }
            }
        }
        prop_assert_eq!(
            out.degraded.nodes_recovered > 0,
            out.round.live_nodes().any(|n| {
                n.aggregates.as_deref() == Some(&out.round.expected_sums[..])
                    && n.included_sources as usize == live_sources
            })
        );
    }

    /// Any survivor set of size exactly t+1 reconstructs the same
    /// aggregate as the full set, over seeded fault plans: nodes holding
    /// *different* threshold subsets (because loss erased different sum
    /// deliveries) all agree on the full aggregate.
    #[test]
    fn threshold_survivor_sets_agree_on_the_aggregate(
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        loss_pct in 5u32..40,
    ) {
        let topology = grid9();
        let config = grid9_config().sources(6).build().unwrap();
        let plan = RoundPlan::new(&topology, &config, ProtocolKind::S4).unwrap();
        let mut executor = plan.executor();
        let faults = FaultPlan::lossy(fault_seed, loss_pct as f64 / 100.0).with_delay(0.1);
        let out = executor.run_degraded(seed, &faults).unwrap();
        let full = config.sources.len() as u32;
        let mut agreed: Option<Vec<u64>> = None;
        for node in out.round.live_nodes() {
            if node.included_sources == full {
                let aggs = node.aggregates.clone().expect("full coverage implies a value");
                prop_assert_eq!(&aggs, &out.round.expected_sums);
                if let Some(prev) = &agreed {
                    prop_assert_eq!(prev, &aggs);
                }
                agreed = Some(aggs);
            }
        }
    }
}
