//! The fragmenting transport's conformance suite.
//!
//! Contracts enforced here:
//!
//! 1. **The codec is lossless and loss-honest** — proptested: any
//!    datagram up to the 7 KB cap survives fragment/reassemble under
//!    arbitrary delivery order and duplication, and a missing fragment
//!    costs the *whole* datagram (6LoWPAN semantics), never a partial
//!    delivery.
//! 2. **The flag is inert below the cap** — for {S3, S4} × both
//!    testbeds, every outcome of a `fragmentation(true)` deployment at
//!    B ≤ 23 equals the `fragmentation(false)` outcome bit for bit, and
//!    the round-report text is unchanged (no `fragments` line). Together
//!    with the golden fixtures (`tests/golden/round_report.txt` et al.,
//!    which pin the pre-fragmentation text) this is the differential
//!    guarantee that the tentpole did not move any existing byte.
//! 3. **Wide batches actually complete** — B = 64 and B = 256 rounds
//!    run end to end on both testbed topologies, every live node
//!    reconstructs every lane, and the report carries the honest
//!    fragment-aware cost: the `fragments` line, and a scheduled phase
//!    duration that grows with the per-slot frame count.

use ppda::mpc::{Deployment, ProtocolConfig, ProtocolKind, RoundPlan};
use ppda::radio::{Fragmenter, Reassembler, MAX_DATAGRAM_LEN, MAX_FRAGMENT_DATA};
use ppda::sim::Xoshiro256;
use ppda::topology::Topology;
use ppda_bench::TestbedSetup;
use proptest::prelude::*;
use rand::RngCore;

// ---- 1. Codec properties ----------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any datagram — including multi-KB ones spanning dozens of frames
    /// — reassembles exactly, regardless of the order fragments arrive
    /// in and of duplicated deliveries.
    #[test]
    fn reassembly_survives_reorder_and_duplication(
        len in 1usize..(4 * MAX_FRAGMENT_DATA),
        big in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // Half the cases stretch past 4 KB so reordering exercises the
        // full 64-bit completion mask, not just a few fragments.
        let len = if big { 4096 + len } else { len };
        prop_assert!(len <= MAX_DATAGRAM_LEN);
        let mut rng = Xoshiro256::seed_from(seed);
        let mut datagram = vec![0u8; len];
        rng.fill_bytes(&mut datagram);

        let mut tx = Fragmenter::default();
        let frames = tx.fragment(&datagram).unwrap();

        // Shuffle the delivery order (Fisher–Yates off the same rng).
        let mut order: Vec<usize> = (0..frames.len()).collect();
        for i in (1..order.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }

        let mut rx = Reassembler::default();
        let mut delivered = None;
        for &i in &order {
            // Every fragment arrives twice; the duplicate must be inert.
            if let Some(whole) = rx.accept(3, &frames[i]).unwrap() {
                delivered = Some(whole);
            }
            prop_assert!(rx.accept(3, &frames[i]).unwrap().is_none());
        }
        prop_assert_eq!(delivered.as_deref(), Some(&datagram[..]));
        prop_assert_eq!(rx.completed(), 1);
        prop_assert_eq!(rx.dropped(), 0);
    }

    /// A single missing fragment loses the whole datagram: nothing is
    /// delivered, and the loss is accounted the moment the next
    /// datagram's fragments displace the stale partial state.
    #[test]
    fn missing_fragment_drops_the_whole_datagram(
        len in (MAX_FRAGMENT_DATA + 1)..(8 * MAX_FRAGMENT_DATA),
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut datagram = vec![0u8; len];
        rng.fill_bytes(&mut datagram);

        let mut tx = Fragmenter::default();
        let frames = tx.fragment(&datagram).unwrap();
        prop_assert!(frames.len() >= 2);
        let lost = (rng.next_u64() % frames.len() as u64) as usize;

        let mut rx = Reassembler::default();
        for (i, frame) in frames.iter().enumerate() {
            if i == lost {
                continue;
            }
            prop_assert!(rx.accept(9, frame).unwrap().is_none());
        }
        prop_assert_eq!(rx.completed(), 0);

        // The next datagram from the same source completes normally and
        // retires the incomplete predecessor as a drop.
        let next = tx.fragment(&[0xAB; 4]).unwrap();
        let whole = rx.accept(9, &next[0]).unwrap();
        prop_assert_eq!(whole.as_deref(), Some(&[0xAB; 4][..]));
        prop_assert_eq!(rx.dropped(), 1);
    }
}

// ---- 2. The flag is inert below the single-frame cap -------------------

fn testbeds() -> Vec<TestbedSetup> {
    vec![TestbedSetup::flocklab(), TestbedSetup::dcube()]
}

/// For every protocol × testbed × in-cap lane width, a deployment with
/// fragmentation enabled produces byte-identical outcomes *and* report
/// text to one without: the flag only changes what happens past the cap.
#[test]
fn fragmentation_flag_is_differential_noop_below_the_cap() {
    for setup in testbeds() {
        let topology = setup.topology();
        for kind in [ProtocolKind::S3, ProtocolKind::S4] {
            for batch in [1usize, 8, 23] {
                let plain = setup.config_batched(6, batch).unwrap();
                let flagged = setup.config_wide(6, batch).unwrap();
                assert_eq!(flagged.share_fragments(), 1);
                assert_eq!(flagged.sum_fragments(), 1);

                let drive = |config: ProtocolConfig| {
                    let deployment = Deployment::builder()
                        .topology_ref(&topology)
                        .config(config)
                        .protocol(kind)
                        .build()
                        .unwrap();
                    let mut driver = deployment.driver();
                    [3u64, 17, 4242].map(|seed| driver.round_at(plain.round_id, seed).unwrap())
                };
                for (a, b) in drive(plain.clone()).iter().zip(&drive(flagged.clone())) {
                    assert_eq!(
                        a,
                        b,
                        "{} B={batch} on {}: fragmentation flag changed an in-cap round",
                        kind.name(),
                        topology.name()
                    );
                    let text = a.to_string();
                    assert_eq!(text, b.to_string());
                    assert!(
                        !text.contains("fragments"),
                        "in-cap rounds must not grow a fragments line:\n{text}"
                    );
                }
            }
        }
    }
}

// ---- 3. Wide batches complete, with honest fragment-aware cost ---------

/// B = 64 and B = 256 rounds complete on both testbeds: every live node
/// reconstructs every lane correctly, the report names the fragment
/// counts, and the scheduled phase durations carry the multi-frame cost.
#[test]
fn wide_batches_complete_on_both_testbeds() {
    // (testbed, B, ntx override, expected share/sum fragments, seeds).
    // D-Cube at B = 256 needs a larger retransmission budget: its harsher
    // fading must now land 10 frames per packet — exactly the honest
    // cost the fragmenting transport makes explicit.
    let cases = [
        ("flocklab", 64usize, None, (3u32, 3u32), [1u64, 2, 4]),
        ("flocklab", 256, None, (10, 10), [1, 2, 4]),
        ("dcube", 64, None, (3, 3), [1, 2, 4]),
        ("dcube", 256, Some(12u32), (10, 10), [1, 2, 4]),
    ];
    for (name, batch, ntx, (share_frags, sum_frags), seeds) in cases {
        let setup = TestbedSetup::by_name(name).unwrap();
        let topology = setup.topology();
        let config = match ntx {
            None => setup.config_wide(6, batch).unwrap(),
            Some(ntx) => ProtocolConfig::builder(topology.len())
                .sources(6)
                .ntx_sharing(ntx)
                .ntx_reconstruction(ntx)
                .full_coverage_ntx(setup.s3_ntx)
                .aggregator_redundancy(setup.redundancy)
                .fading(setup.fading)
                .batch(batch)
                .fragmentation(true)
                .build()
                .unwrap(),
        };
        assert_eq!(config.share_fragments(), share_frags);
        assert_eq!(config.sum_fragments(), sum_frags);

        // The in-cap reference for the cost comparison: same deployment
        // at the widest unfragmented width.
        let narrow = setup.config_batched(6, 23).unwrap();
        let narrow_plan = RoundPlan::new(&topology, &narrow, ProtocolKind::S4).unwrap();
        let narrow_sharing = narrow_plan
            .executor()
            .run(1)
            .unwrap()
            .sharing
            .scheduled_duration;

        let deployment = Deployment::builder()
            .topology_ref(&topology)
            .config(config.clone())
            .protocol(ProtocolKind::S4)
            .build()
            .unwrap();
        let mut driver = deployment.driver();
        for seed in seeds {
            let report = driver.round_at(config.round_id, seed).unwrap();
            assert!(
                report.correct(),
                "{name} B={batch} seed={seed}: a wide round failed to complete"
            );
            assert_eq!(report.lanes(), batch);
            assert_eq!(report.outcome.sharing.fragments, share_frags);
            assert_eq!(report.outcome.reconstruction.fragments, sum_frags);
            assert!(
                report.outcome.sharing.scheduled_duration
                    > narrow_sharing * (share_frags as u64 - 1),
                "{name} B={batch}: fragmented sharing phase must cost \
                 proportionally more air time than the 23-lane round"
            );
            let text = report.to_string();
            assert!(
                text.contains(&format!(
                    "fragments sharing {share_frags} reconstruction {sum_frags}"
                )),
                "report must surface the fragment counts:\n{text}"
            );
        }
    }
}

/// The fragment layer has its own ceiling, and the config error names
/// the escape hatch on both sides of it.
#[test]
fn wide_batch_errors_point_at_fragmentation() {
    let topology = Topology::flocklab();
    let unflagged = ProtocolConfig::builder(topology.len())
        .sources(6)
        .batch(64)
        .build()
        .unwrap_err();
    assert!(unflagged.to_string().contains("fragmentation"));
}
