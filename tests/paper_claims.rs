//! The paper's qualitative claims, asserted as executable tests. These are
//! deliberately conservative versions of the quantitative results recorded
//! in EXPERIMENTS.md (which use 100-iteration campaigns); here a handful of
//! seeded rounds must reproduce each *shape*.
#![allow(deprecated)] // this suite exercises the legacy single-shot oracle

use ppda::ct::MiniCast;
use ppda::mpc::{ProtocolConfig, S3Protocol, S4Protocol};
use ppda::radio::{FadingProfile, FrameSpec};
use ppda::topology::Topology;

/// §IV: "S4 achieves private aggregation at least 6× faster … in FlockLab".
/// Conservative bound here (≥4× over 3 seeds) — the full campaign measures
/// 6.0–6.1×.
#[test]
fn s4_latency_advantage_flocklab() {
    let t = Topology::flocklab();
    let config = ProtocolConfig::builder(t.len()).build().unwrap();
    for seed in [2u64, 4, 8] {
        let s3 = S3Protocol::new(config.clone()).run(&t, seed).unwrap();
        let s4 = S4Protocol::new(config.clone()).run(&t, seed).unwrap();
        let (l3, l4) = (
            s3.mean_latency_ms().expect("S3 completes"),
            s4.mean_latency_ms().expect("S4 completes"),
        );
        assert!(l3 > 4.0 * l4, "seed {seed}: S3 {l3:.0} vs S4 {l4:.0}");
    }
}

/// §IV: "consuming 7× lesser radio-on time" — conservative ≥4× bound.
#[test]
fn s4_radio_advantage_flocklab() {
    let t = Topology::flocklab();
    let config = ProtocolConfig::builder(t.len()).build().unwrap();
    let s3 = S3Protocol::new(config.clone()).run(&t, 6).unwrap();
    let s4 = S4Protocol::new(config).run(&t, 6).unwrap();
    assert!(s3.mean_radio_on_ms() > 4.0 * s4.mean_radio_on_ms());
}

/// §IV: the D-Cube advantage exceeds the FlockLab advantage (9× vs 6× in
/// the paper; 7.4× vs 6.1× here).
#[test]
fn dcube_ratio_exceeds_flocklab_ratio() {
    let ratio = |t: &Topology, s3_ntx: u32, s4_ntx: u32, fading: FadingProfile| {
        let config = ProtocolConfig::builder(t.len())
            .full_coverage_ntx(s3_ntx)
            .ntx_sharing(s4_ntx)
            .ntx_reconstruction(s4_ntx)
            .fading(fading)
            .build()
            .unwrap();
        let s3 = S3Protocol::new(config.clone()).run(t, 5).unwrap();
        let s4 = S4Protocol::new(config).run(t, 5).unwrap();
        s3.scheduled_round_ms() / s4.scheduled_round_ms()
    };
    let fl = ratio(&Topology::flocklab(), 15, 6, FadingProfile::office());
    let dc = ratio(
        &Topology::dcube(),
        20,
        7,
        FadingProfile::industrial_interference(),
    );
    assert!(dc > fl, "dcube {dc:.1}x must exceed flocklab {fl:.1}x");
}

/// §II: the sharing chain is O(n²) for S3 and O(n·(k+1)) for S4; the
/// reconstruction chain is n (S3) vs k+1+r (S4).
#[test]
fn chain_size_complexity() {
    let t = Topology::flocklab();
    let n = t.len();
    let config = ProtocolConfig::builder(n).build().unwrap();
    let k = config.degree;
    let r = config.aggregator_redundancy;
    let s3 = S3Protocol::new(config.clone()).run(&t, 1).unwrap();
    let s4 = S4Protocol::new(config).run(&t, 1).unwrap();
    assert_eq!(s3.sharing.chain_len, n * (n - 1));
    assert_eq!(s3.reconstruction.chain_len, n);
    // Every source sends to the k+1+r aggregators (minus itself if it is one).
    assert!(s4.sharing.chain_len >= n * (k + r));
    assert!(s4.sharing.chain_len <= n * (k + 1 + r));
    assert_eq!(s4.reconstruction.chain_len, k + 1 + r);
}

/// §III: MiniCast coverage is non-linear in NTX — most data arrives within
/// a few transmissions, full coverage takes disproportionately longer.
#[test]
fn coverage_knee_exists() {
    let t = Topology::dcube();
    let frame = FrameSpec::new(8, 0).unwrap();
    let curve = MiniCast::coverage_vs_ntx(&t, frame, &[2, 5, 12], 5, 31);
    let c2 = curve[0].1;
    let c5 = curve[1].1;
    let c12 = curve[2].1;
    // Half the doubling from 2→5 brings a big jump…
    assert!(c5 - c2 > 0.2, "steep rise: {c2:.2} -> {c5:.2}");
    // …while more than doubling again adds only the tail.
    assert!(c12 - c5 < c5 - c2, "flattening tail: {c5:.3} -> {c12:.3}");
    assert!(c12 > 0.999, "full coverage eventually: {c12:.4}");
}

/// §III: lower degree ⇒ cheaper S4 (the paper's closing observation).
#[test]
fn lower_degree_is_cheaper() {
    let t = Topology::flocklab();
    let run = |k: usize| {
        let config = ProtocolConfig::builder(t.len()).degree(k).build().unwrap();
        S4Protocol::new(config)
            .run(&t, 9)
            .unwrap()
            .scheduled_round_ms()
    };
    let low = run(2);
    let paper = run(8);
    assert!(
        paper > 1.5 * low,
        "degree 2 round {low:.0} ms must undercut degree 8 round {paper:.0} ms"
    );
}

/// §II: the reconstruction phase runs in plaintext while the sharing phase
/// pays for AES-CCM tags — visible in the frame budgets.
#[test]
fn phase_frame_budgets() {
    // Sharing: 4-byte share + 4-byte MIC. Reconstruction: 26-byte sum
    // packet, no MIC.
    let sharing = FrameSpec::new(4, 4).unwrap();
    let recon = FrameSpec::new(26, 0).unwrap();
    assert_eq!(sharing.mic_len(), 4);
    assert_eq!(recon.mic_len(), 0);
    assert!(recon.psdu_len() > sharing.psdu_len());
}

/// The scheduled round durations land on the paper's log-scale axis
/// (10³–10⁵ ms) at the complete network.
#[test]
fn absolute_scale_matches_paper_axis() {
    for (t, s3_ntx) in [(Topology::flocklab(), 15u32), (Topology::dcube(), 20)] {
        let config = ProtocolConfig::builder(t.len())
            .full_coverage_ntx(s3_ntx)
            .build()
            .unwrap();
        let s3 = S3Protocol::new(config.clone()).run(&t, 3).unwrap();
        let s4 = S4Protocol::new(config).run(&t, 3).unwrap();
        for ms in [s3.scheduled_round_ms(), s4.scheduled_round_ms()] {
            assert!(
                (100.0..200_000.0).contains(&ms),
                "{}: {ms:.0} ms outside the paper's axis",
                t.name()
            );
        }
    }
}
