//! Cross-crate wire-format tests: the byte-level contracts between the SSS
//! layer, the crypto layer and the radio frame budget — including golden
//! vectors committed under `tests/golden/` that freeze the exact bytes (and
//! timing numbers) on the wire. A change that shuffles the encoding breaks
//! interop with deployed nodes even if round-trips still pass; the golden
//! files catch that class of regression.
//!
//! To regenerate after an *intentional* format change:
//! `GOLDEN_REGEN=1 cargo test --test wire_formats` — then review the diff.

use ppda::crypto::{Ccm, PairwiseKeys};
use ppda::field::{share_x, Gf31, Gf61, Mersenne31, Mersenne61};
use ppda::radio::FrameSpec;
use ppda::sss::{Share, SharePacket, SumPacket};

/// Compare `actual` against the committed fixture, or rewrite the fixture
/// when `GOLDEN_REGEN=1` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    assert_eq!(
        actual,
        expected,
        "wire format drifted from {}; if intentional, regenerate with GOLDEN_REGEN=1",
        path.display()
    );
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn golden_sum_packet_m31() {
    let pkt = SumPacket::<Mersenne31> {
        node: 3,
        round: 0x0102_0304,
        share: Share {
            x: share_x::<Mersenne31>(3),
            y: Gf31::new(0x0BAD_CAFE),
        },
        mask: 0x0000_0000_0000_0000_0000_0000_DEAD_BEEF,
    };
    let encoded = pkt.encode();
    assert_golden("sum_packet_m31.hex", &format!("{}\n", hex(&encoded)));
    assert_eq!(SumPacket::<Mersenne31>::decode(&encoded).unwrap(), pkt);
}

#[test]
fn golden_sum_packet_m61() {
    let pkt = SumPacket::<Mersenne61> {
        node: 44,
        round: 7,
        share: Share {
            x: share_x::<Mersenne61>(44),
            y: Gf61::new(0x1234_5678_9ABC_DEF0),
        },
        mask: u128::MAX,
    };
    let encoded = pkt.encode();
    assert_golden("sum_packet_m61.hex", &format!("{}\n", hex(&encoded)));
    assert_eq!(SumPacket::<Mersenne61>::decode(&encoded).unwrap(), pkt);
}

#[test]
fn golden_sealed_share_packet() {
    // AES-CCM is deterministic for a fixed (master key, src, dst, round, x,
    // y), so the full sealed ciphertext is a stable fixture: it freezes the
    // pairwise KDF, the nonce layout, the AAD layout and the CCM encoding
    // all at once.
    let keys = PairwiseKeys::derive(&[9u8; 16], 8);
    let pkt = SharePacket::<Mersenne31> {
        src: 2,
        dst: 5,
        round: 7,
        share: Share {
            x: share_x::<Mersenne31>(5),
            y: Gf31::new(123_456_789),
        },
    };
    let mut lines = String::new();
    for tag_len in [4usize, 8, 16] {
        let sealed = pkt.seal(&keys, tag_len).unwrap();
        assert_eq!(sealed.len(), SharePacket::<Mersenne31>::sealed_len(tag_len));
        lines.push_str(&format!("tag{tag_len} {}\n", hex(&sealed)));
    }
    assert_golden("sealed_share_packet_m31.hex", &lines);
    let sealed = pkt.seal(&keys, 4).unwrap();
    let opened =
        SharePacket::<Mersenne31>::open(&keys, 4, 2, 5, 7, share_x::<Mersenne31>(5), &sealed)
            .unwrap();
    assert_eq!(opened, pkt);
}

#[test]
fn golden_ccm_nonce_layout() {
    let mut lines = String::new();
    for (src, dst, round, x) in [
        (0u16, 0u16, 0u32, 0u32),
        (2, 5, 7, 6),
        (65535, 1, 4_000_000_000, 45),
    ] {
        lines.push_str(&format!(
            "{src} {dst} {round} {x} {}\n",
            hex(&Ccm::nonce(src, dst, round, x))
        ));
    }
    assert_golden("ccm_nonce.hex", &lines);
}

#[test]
fn golden_frame_timing_table() {
    // FrameSpec has no byte serialization; its wire contract is the derived
    // slot arithmetic. Freeze psdu/on-air length and airtime/slot µs for
    // the frame shapes the protocols use.
    let mut lines = String::from("payload mic psdu on_air airtime_us slot_us\n");
    for (payload, mic) in [(4usize, 4usize), (4, 8), (4, 16), (8, 0), (26, 0), (116, 0)] {
        let f = FrameSpec::new(payload, mic).unwrap();
        lines.push_str(&format!(
            "{payload} {mic} {} {} {} {}\n",
            f.psdu_len(),
            f.on_air_len(),
            f.airtime().as_micros(),
            f.slot_duration().as_micros()
        ));
    }
    assert_golden("frame_timing.txt", &lines);
}

#[test]
fn share_packet_fits_its_frame_budget() {
    // The sharing-phase FrameSpec used by the protocols: 4-byte payload +
    // 4-byte MIC. The sealed SharePacket must fit exactly.
    let frame = FrameSpec::new(4, 4).unwrap();
    let keys = PairwiseKeys::derive(&[5u8; 16], 8);
    let pkt = SharePacket::<Mersenne31> {
        src: 1,
        dst: 2,
        round: 3,
        share: Share {
            x: share_x::<Mersenne31>(2),
            y: Gf31::new(4242),
        },
    };
    let sealed = pkt.seal(&keys, 4).unwrap();
    assert_eq!(sealed.len(), frame.payload_len() + frame.mic_len());
}

#[test]
fn sum_packet_fits_its_frame_budget() {
    let frame = FrameSpec::new(SumPacket::<Mersenne31>::encoded_len(), 0).unwrap();
    let pkt = SumPacket::<Mersenne31> {
        node: 7,
        round: 1,
        share: Share {
            x: share_x::<Mersenne31>(7),
            y: Gf31::new(99),
        },
        mask: 0b1111,
    };
    assert_eq!(pkt.encode().len(), frame.payload_len());
}

#[test]
fn all_testbed_frames_respect_psdu_limit() {
    // 128 sources is the configured maximum; the sum packet must still fit
    // an 802.15.4 frame.
    assert!(SumPacket::<Mersenne31>::encoded_len() <= 116);
    assert!(FrameSpec::new(SumPacket::<Mersenne31>::encoded_len(), 0).is_ok());
    for tag in [4usize, 8, 16] {
        assert!(FrameSpec::new(4, tag).is_ok());
    }
}

#[test]
fn nonces_are_unique_across_protocol_coordinates() {
    // Every (src, dst, round, x) combination used by a deployment must
    // give a distinct CCM nonce, or share confidentiality collapses.
    let mut seen = std::collections::HashSet::new();
    for src in 0..8u16 {
        for dst in 0..8u16 {
            for round in 1..4u32 {
                let x = share_x::<Mersenne31>(dst as usize);
                assert!(seen.insert(Ccm::nonce(src, dst, round, x.value() as u32)));
            }
        }
    }
}

#[test]
fn cross_round_ciphertexts_differ() {
    // The same share value sealed in different rounds yields unrelated
    // ciphertexts (nonce freshness), so traffic analysis across epochs
    // learns nothing from repeats.
    let keys = PairwiseKeys::derive(&[5u8; 16], 4);
    let mk = |round: u32| SharePacket::<Mersenne31> {
        src: 0,
        dst: 1,
        round,
        share: Share {
            x: share_x::<Mersenne31>(1),
            y: Gf31::new(1234),
        },
    };
    let a = mk(1).seal(&keys, 4).unwrap();
    let b = mk(2).seal(&keys, 4).unwrap();
    assert_ne!(a, b);
}

#[test]
fn decode_rejects_garbage() {
    assert!(SumPacket::<Mersenne31>::decode(&[]).is_err());
    assert!(SumPacket::<Mersenne31>::decode(&[0u8; 5]).is_err());
    // A non-canonical field value (≥ p) in the y slot must be rejected.
    let pkt = SumPacket::<Mersenne31> {
        node: 0,
        round: 0,
        share: Share {
            x: share_x::<Mersenne31>(0),
            y: Gf31::new(1),
        },
        mask: 0,
    };
    let mut bytes = pkt.encode();
    // y occupies bytes [6, 10); overwrite with p (non-canonical).
    bytes[6..10].copy_from_slice(&(Gf31::modulus() as u32).to_le_bytes());
    assert!(SumPacket::<Mersenne31>::decode(&bytes).is_err());
}
