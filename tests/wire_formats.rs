//! Cross-crate wire-format tests: the byte-level contracts between the SSS
//! layer, the crypto layer and the radio frame budget.

use ppda::crypto::{Ccm, PairwiseKeys};
use ppda::field::{share_x, Gf31, Mersenne31};
use ppda::radio::FrameSpec;
use ppda::sss::{Share, SharePacket, SumPacket};

#[test]
fn share_packet_fits_its_frame_budget() {
    // The sharing-phase FrameSpec used by the protocols: 4-byte payload +
    // 4-byte MIC. The sealed SharePacket must fit exactly.
    let frame = FrameSpec::new(4, 4).unwrap();
    let keys = PairwiseKeys::derive(&[5u8; 16], 8);
    let pkt = SharePacket::<Mersenne31> {
        src: 1,
        dst: 2,
        round: 3,
        share: Share {
            x: share_x::<Mersenne31>(2),
            y: Gf31::new(4242),
        },
    };
    let sealed = pkt.seal(&keys, 4).unwrap();
    assert_eq!(sealed.len(), frame.payload_len() + frame.mic_len());
}

#[test]
fn sum_packet_fits_its_frame_budget() {
    let frame = FrameSpec::new(SumPacket::<Mersenne31>::encoded_len(), 0).unwrap();
    let pkt = SumPacket::<Mersenne31> {
        node: 7,
        round: 1,
        share: Share {
            x: share_x::<Mersenne31>(7),
            y: Gf31::new(99),
        },
        mask: 0b1111,
    };
    assert_eq!(pkt.encode().len(), frame.payload_len());
}

#[test]
fn all_testbed_frames_respect_psdu_limit() {
    // 128 sources is the configured maximum; the sum packet must still fit
    // an 802.15.4 frame.
    assert!(SumPacket::<Mersenne31>::encoded_len() <= 116);
    assert!(FrameSpec::new(SumPacket::<Mersenne31>::encoded_len(), 0).is_ok());
    for tag in [4usize, 8, 16] {
        assert!(FrameSpec::new(4, tag).is_ok());
    }
}

#[test]
fn nonces_are_unique_across_protocol_coordinates() {
    // Every (src, dst, round, x) combination used by a deployment must
    // give a distinct CCM nonce, or share confidentiality collapses.
    let mut seen = std::collections::HashSet::new();
    for src in 0..8u16 {
        for dst in 0..8u16 {
            for round in 1..4u32 {
                let x = share_x::<Mersenne31>(dst as usize);
                assert!(seen.insert(Ccm::nonce(src, dst, round, x.value() as u32)));
            }
        }
    }
}

#[test]
fn cross_round_ciphertexts_differ() {
    // The same share value sealed in different rounds yields unrelated
    // ciphertexts (nonce freshness), so traffic analysis across epochs
    // learns nothing from repeats.
    let keys = PairwiseKeys::derive(&[5u8; 16], 4);
    let mk = |round: u32| SharePacket::<Mersenne31> {
        src: 0,
        dst: 1,
        round,
        share: Share {
            x: share_x::<Mersenne31>(1),
            y: Gf31::new(1234),
        },
    };
    let a = mk(1).seal(&keys, 4).unwrap();
    let b = mk(2).seal(&keys, 4).unwrap();
    assert_ne!(a, b);
}

#[test]
fn decode_rejects_garbage() {
    assert!(SumPacket::<Mersenne31>::decode(&[]).is_err());
    assert!(SumPacket::<Mersenne31>::decode(&[0u8; 5]).is_err());
    // A non-canonical field value (≥ p) in the y slot must be rejected.
    let pkt = SumPacket::<Mersenne31> {
        node: 0,
        round: 0,
        share: Share {
            x: share_x::<Mersenne31>(0),
            y: Gf31::new(1),
        },
        mask: 0,
    };
    let mut bytes = pkt.encode();
    // y occupies bytes [6, 10); overwrite with p (non-canonical).
    bytes[6..10].copy_from_slice(&(Gf31::modulus() as u32).to_le_bytes());
    assert!(SumPacket::<Mersenne31>::decode(&bytes).is_err());
}
