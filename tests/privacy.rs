//! End-to-end privacy tests: the collusion threshold holds for the actual
//! destination assignments produced by the bootstrap on the real testbed
//! models, and the constructive indistinguishability argument goes through
//! with real shares.

use ppda::field::{lagrange, share_x, Gf31, Mersenne31};
use ppda::mpc::adversary::{
    consistent_polynomial, destination_points, observed_shares, SecrecyAnalysis,
};
use ppda::sss::split_secret;
use ppda::topology::Topology;
use ppda_testkit::{aggregator_setup, rng};

#[test]
fn threshold_collusion_learns_nothing_on_flocklab() {
    let topology = Topology::flocklab();
    let (config, aggregators) = aggregator_setup(&topology);
    let k = config.degree;

    // Collude exactly k of the real aggregators.
    let colluders: Vec<u16> = aggregators[..k].to_vec();
    let analysis = SecrecyAnalysis::new(k, &aggregators, &colluders);
    assert!(analysis.secret_hidden());
    assert_eq!(analysis.observed_points(), k);

    // With real shares: every candidate secret is constructible.
    let mut rng = rng(404);
    let xs = destination_points::<Mersenne31>(&aggregators);
    let secret = Gf31::new(22_50); // a 22.50 °C reading
    let shares = split_secret(secret, k, &xs, &mut rng).unwrap();
    let observed = observed_shares(&aggregators, &shares, &colluders);
    for candidate in [0u64, 1, 9_999, 1_000_000] {
        let poly = consistent_polynomial(Gf31::new(candidate), &observed, k, &mut rng).unwrap();
        assert_eq!(poly.eval(Gf31::ZERO), Gf31::new(candidate));
        for s in &observed {
            assert_eq!(poly.eval(s.x), s.y);
        }
    }
}

#[test]
fn threshold_plus_one_collusion_breaks_secrecy() {
    let topology = Topology::flocklab();
    let (config, aggregators) = aggregator_setup(&topology);
    let k = config.degree;

    let colluders: Vec<u16> = aggregators[..k + 1].to_vec();
    let analysis = SecrecyAnalysis::new(k, &aggregators, &colluders);
    assert!(!analysis.secret_hidden());

    // And indeed k+1 real shares pin the secret exactly.
    let mut rng = rng(405);
    let xs = destination_points::<Mersenne31>(&aggregators);
    let secret = Gf31::new(1234);
    let shares = split_secret(secret, k, &xs, &mut rng).unwrap();
    let observed = observed_shares(&aggregators, &shares, &colluders);
    let points: Vec<(Gf31, Gf31)> = observed.iter().map(|s| (s.x, s.y)).collect();
    assert_eq!(lagrange::interpolate_at_zero(&points).unwrap(), secret);
    assert!(consistent_polynomial(Gf31::new(9), &observed, k, &mut rng).is_none());
}

#[test]
fn dcube_threshold_matches_degree() {
    let topology = Topology::dcube();
    let (config, aggregators) = aggregator_setup(&topology);
    let k = config.degree; // 15
    assert_eq!(aggregators.len(), k + 1 + config.aggregator_redundancy);

    for colluding in [1usize, k / 2, k] {
        let analysis = SecrecyAnalysis::new(k, &aggregators, &aggregators[..colluding]);
        assert!(analysis.secret_hidden(), "{colluding} colluders must fail");
        assert_eq!(analysis.margin(), k + 1 - colluding);
    }
    let analysis = SecrecyAnalysis::new(k, &aggregators, &aggregators[..k + 1]);
    assert!(!analysis.secret_hidden());
}

#[test]
fn non_aggregators_observe_nothing_in_s4() {
    // In S4, shares travel only to aggregators (encrypted for them); a
    // collusion of arbitrarily many NON-aggregator nodes sees zero points.
    let topology = Topology::flocklab();
    let (config, aggregators) = aggregator_setup(&topology);
    let outsiders: Vec<u16> = (0..topology.len() as u16)
        .filter(|v| !aggregators.contains(v))
        .collect();
    assert!(outsiders.len() > config.degree, "test needs many outsiders");
    let analysis = SecrecyAnalysis::new(config.degree, &aggregators, &outsiders);
    assert_eq!(analysis.observed_points(), 0);
    assert!(analysis.secret_hidden());
}

#[test]
fn share_x_assignment_is_injective_over_testbeds() {
    // Distinct nodes must map to distinct public points or shares collide.
    for topology in [Topology::flocklab(), Topology::dcube()] {
        let mut seen = std::collections::HashSet::new();
        for v in 0..topology.len() {
            assert!(seen.insert(share_x::<Mersenne31>(v)));
        }
    }
}

#[test]
fn sum_shares_hide_individual_contributions() {
    // A sum share is the sum of k-degree evaluations; even the aggregator
    // holding it cannot separate the addends. Sanity-check the algebra:
    // two different reading vectors with the same total produce sums that
    // reconstruct identically at x = 0.
    let mut rng = rng(7);
    let k = 3;
    let xs: Vec<Gf31> = (0..6).map(share_x::<Mersenne31>).collect();
    let total_a = [10u64, 20, 30];
    let total_b = [30u64, 20, 10];
    let reconstruct = |readings: &[u64], rng: &mut ppda::sim::Xoshiro256| {
        let mut sums = vec![Gf31::ZERO; xs.len()];
        for &r in readings {
            let shares = split_secret(Gf31::new(r), k, &xs, rng).unwrap();
            for (acc, s) in sums.iter_mut().zip(shares) {
                *acc += s.y;
            }
        }
        let pts: Vec<(Gf31, Gf31)> = xs.iter().copied().zip(sums).take(k + 1).collect();
        lagrange::interpolate_at_zero(&pts).unwrap()
    };
    assert_eq!(
        reconstruct(&total_a, &mut rng),
        reconstruct(&total_b, &mut rng)
    );
}
