//! End-to-end privacy tests: the collusion threshold holds for the actual
//! destination assignments produced by the bootstrap on the real testbed
//! models, the constructive indistinguishability argument goes through
//! with real shares, and the fault-injection layer leaks nothing — which
//! shares were lost is secret-independent metadata, and losing shares can
//! only *shrink* what a collusion observes.

use ppda::field::{lagrange, share_x, Gf31, Mersenne31};
use ppda::mpc::adversary::{
    consistent_polynomial, destination_points, observed_shares, SecrecyAnalysis,
};
use ppda::mpc::{ProtocolKind, RoundPlan};
use ppda::sss::split_secret;
use ppda::topology::Topology;
use ppda_testkit::{aggregator_setup, lossy_dropout, rng};

#[test]
fn threshold_collusion_learns_nothing_on_flocklab() {
    let topology = Topology::flocklab();
    let (config, aggregators) = aggregator_setup(&topology);
    let k = config.degree;

    // Collude exactly k of the real aggregators.
    let colluders: Vec<u16> = aggregators[..k].to_vec();
    let analysis = SecrecyAnalysis::new(k, &aggregators, &colluders);
    assert!(analysis.secret_hidden());
    assert_eq!(analysis.observed_points(), k);

    // With real shares: every candidate secret is constructible.
    let mut rng = rng(404);
    let xs = destination_points::<Mersenne31>(&aggregators);
    let secret = Gf31::new(22_50); // a 22.50 °C reading
    let shares = split_secret(secret, k, &xs, &mut rng).unwrap();
    let observed = observed_shares(&aggregators, &shares, &colluders);
    for candidate in [0u64, 1, 9_999, 1_000_000] {
        let poly = consistent_polynomial(Gf31::new(candidate), &observed, k, &mut rng).unwrap();
        assert_eq!(poly.eval(Gf31::ZERO), Gf31::new(candidate));
        for s in &observed {
            assert_eq!(poly.eval(s.x), s.y);
        }
    }
}

#[test]
fn threshold_plus_one_collusion_breaks_secrecy() {
    let topology = Topology::flocklab();
    let (config, aggregators) = aggregator_setup(&topology);
    let k = config.degree;

    let colluders: Vec<u16> = aggregators[..k + 1].to_vec();
    let analysis = SecrecyAnalysis::new(k, &aggregators, &colluders);
    assert!(!analysis.secret_hidden());

    // And indeed k+1 real shares pin the secret exactly.
    let mut rng = rng(405);
    let xs = destination_points::<Mersenne31>(&aggregators);
    let secret = Gf31::new(1234);
    let shares = split_secret(secret, k, &xs, &mut rng).unwrap();
    let observed = observed_shares(&aggregators, &shares, &colluders);
    let points: Vec<(Gf31, Gf31)> = observed.iter().map(|s| (s.x, s.y)).collect();
    assert_eq!(lagrange::interpolate_at_zero(&points).unwrap(), secret);
    assert!(consistent_polynomial(Gf31::new(9), &observed, k, &mut rng).is_none());
}

#[test]
fn dcube_threshold_matches_degree() {
    let topology = Topology::dcube();
    let (config, aggregators) = aggregator_setup(&topology);
    let k = config.degree; // 15
    assert_eq!(aggregators.len(), k + 1 + config.aggregator_redundancy);

    for colluding in [1usize, k / 2, k] {
        let analysis = SecrecyAnalysis::new(k, &aggregators, &aggregators[..colluding]);
        assert!(analysis.secret_hidden(), "{colluding} colluders must fail");
        assert_eq!(analysis.margin(), k + 1 - colluding);
    }
    let analysis = SecrecyAnalysis::new(k, &aggregators, &aggregators[..k + 1]);
    assert!(!analysis.secret_hidden());
}

#[test]
fn non_aggregators_observe_nothing_in_s4() {
    // In S4, shares travel only to aggregators (encrypted for them); a
    // collusion of arbitrarily many NON-aggregator nodes sees zero points.
    let topology = Topology::flocklab();
    let (config, aggregators) = aggregator_setup(&topology);
    let outsiders: Vec<u16> = (0..topology.len() as u16)
        .filter(|v| !aggregators.contains(v))
        .collect();
    assert!(outsiders.len() > config.degree, "test needs many outsiders");
    let analysis = SecrecyAnalysis::new(config.degree, &aggregators, &outsiders);
    assert_eq!(analysis.observed_points(), 0);
    assert!(analysis.secret_hidden());
}

#[test]
fn share_x_assignment_is_injective_over_testbeds() {
    // Distinct nodes must map to distinct public points or shares collide.
    for topology in [Topology::flocklab(), Topology::dcube()] {
        let mut seen = std::collections::HashSet::new();
        for v in 0..topology.len() {
            assert!(seen.insert(share_x::<Mersenne31>(v)));
        }
    }
}

#[test]
fn fault_metadata_is_secret_independent() {
    // The fault layer's draws (which links lost, who dropped out, what
    // was delayed) are pure functions of seeds and coordinates — NEVER of
    // the secrets. Two degraded rounds with identical seeds but entirely
    // different readings must realize the *identical* fault pattern and
    // survivor set, so observing loss metadata gives a colluder zero bits
    // about any reading.
    let topology = Topology::flocklab();
    let config = ppda::mpc::ProtocolConfig::builder(topology.len())
        .sources(6)
        .build()
        .unwrap();
    let plan = RoundPlan::new(&topology, &config, ProtocolKind::S4).unwrap();
    let faults = lossy_dropout(0.3, 0.1).with_delay(0.1);
    let failed = vec![false; topology.len()];
    let secrets_a: Vec<u64> = (0..6u64).map(|i| 100 + i).collect();
    let secrets_b: Vec<u64> = (0..6u64).map(|i| 65_000 - 7 * i).collect();
    let mut executor = plan.executor();
    for seed in [4u64, 17, 0xC0FFEE] {
        let a = executor
            .run_epoch_degraded(config.round_id, seed, &secrets_a, &failed, &faults)
            .unwrap();
        let b = executor
            .run_epoch_degraded(config.round_id, seed, &secrets_b, &failed, &faults)
            .unwrap();
        assert_eq!(
            a.degraded, b.degraded,
            "fault realization must not depend on the secrets (seed {seed})"
        );
        assert_ne!(
            a.round.expected_sums, b.round.expected_sums,
            "sanity: the readings really differ"
        );
    }
}

#[test]
fn lost_shares_grant_no_collusion_margin() {
    // Share loss only removes points from a collusion's view: for every
    // loss pattern, the colluders' observed count is ≤ the loss-free
    // count, so the secrecy margin never shrinks. Sweep seeded loss
    // patterns over the real FlockLab aggregator assignment.
    let topology = Topology::flocklab();
    let (config, aggregators) = aggregator_setup(&topology);
    let k = config.degree;
    let colluders: Vec<u16> = aggregators[..k].to_vec();
    let baseline = SecrecyAnalysis::new(k, &aggregators, &colluders);
    assert!(baseline.secret_hidden());

    let faults = ppda::mpc::FaultPlan::none().with_delay(0.4);
    for round_seed in 0..32u64 {
        let rf = faults.realize(1, round_seed);
        // Destinations whose share delivery survived this round's faults.
        let delivered: Vec<u16> = aggregators
            .iter()
            .enumerate()
            .filter(|&(slot, &d)| {
                matches!(
                    rf.delivery(0, slot, d as usize),
                    ppda::mpc::Delivery::OnTime | ppda::mpc::Delivery::Duplicated
                )
            })
            .map(|(_, &d)| d)
            .collect();
        let degraded = SecrecyAnalysis::new(k, &delivered, &colluders);
        assert!(
            degraded.observed_points() <= baseline.observed_points(),
            "loss cannot add observations"
        );
        assert!(
            degraded.margin() >= baseline.margin(),
            "loss cannot shrink the secrecy margin"
        );
        assert!(degraded.secret_hidden());
    }
}

#[test]
fn sum_shares_hide_individual_contributions() {
    // A sum share is the sum of k-degree evaluations; even the aggregator
    // holding it cannot separate the addends. Sanity-check the algebra:
    // two different reading vectors with the same total produce sums that
    // reconstruct identically at x = 0.
    let mut rng = rng(7);
    let k = 3;
    let xs: Vec<Gf31> = (0..6).map(share_x::<Mersenne31>).collect();
    let total_a = [10u64, 20, 30];
    let total_b = [30u64, 20, 10];
    let reconstruct = |readings: &[u64], rng: &mut ppda::sim::Xoshiro256| {
        let mut sums = vec![Gf31::ZERO; xs.len()];
        for &r in readings {
            let shares = split_secret(Gf31::new(r), k, &xs, rng).unwrap();
            for (acc, s) in sums.iter_mut().zip(shares) {
                *acc += s.y;
            }
        }
        let pts: Vec<(Gf31, Gf31)> = xs.iter().copied().zip(sums).take(k + 1).collect();
        lagrange::interpolate_at_zero(&pts).unwrap()
    };
    assert_eq!(
        reconstruct(&total_a, &mut rng),
        reconstruct(&total_b, &mut rng)
    );
}

#[test]
fn membership_metadata_is_secret_independent() {
    // Trickle beacons, convergence times and plan patches are pure
    // functions of the topology, the event stream and the deployment
    // seed — NEVER of the master key the readings derive from. Two
    // deployments differing only in their master key (and therefore in
    // every secret reading) must disseminate, patch and re-elect
    // identically, so a colluder watching the membership control plane
    // learns zero bits about any reading.
    use ppda::prelude::*;

    let topology = Topology::flocklab();
    let n = topology.len() as u16;
    let events = vec![
        MembershipEvent::leave(3, n - 2),
        MembershipEvent::crash(5, n - 3),
        MembershipEvent::rejoin(10, n - 2),
    ];
    let run = |key: [u8; 16]| {
        let config = ppda::mpc::ProtocolConfig::builder(topology.len())
            .sources(6)
            .master_key(key)
            .build()
            .unwrap();
        let deployment = Deployment::builder()
            .topology(topology.clone())
            .config(config)
            .protocol(ProtocolKind::S4)
            .seed(0xD15C)
            .membership(events.clone())
            .build()
            .unwrap();
        let deltas = deployment
            .membership()
            .expect("timeline compiled")
            .deltas()
            .to_vec();
        let mut driver = deployment.driver();
        let reports: Vec<RoundReport> = (0..16).map(|_| driver.step().unwrap()).collect();
        let patches: Vec<Option<PlanPatch>> = reports.iter().map(|r| r.patch).collect();
        let sums: Vec<Vec<u64>> = reports
            .iter()
            .map(|r| r.outcome.expected_sums.clone())
            .collect();
        (deltas, patches, sums)
    };

    let (deltas_a, patches_a, sums_a) = run([0x11; 16]);
    let (deltas_b, patches_b, sums_b) = run([0xEE; 16]);
    assert_eq!(deltas_a, deltas_b, "dissemination must ignore secrets");
    assert_eq!(patches_a, patches_b, "patching must ignore secrets");
    assert_ne!(sums_a, sums_b, "sanity: the readings really differ");
}

#[test]
fn churn_never_shrinks_the_secrecy_margin() {
    // Membership churn only ever removes destinations from (or restores
    // them to) the elected set — it can hand a fixed collusion no extra
    // share points. Walk a churny S4 run and check the live destination
    // set against the static baseline at every round: the colluders'
    // view never grows, the margin never shrinks, and a fresh worst-case
    // collusion of k current aggregators still learns nothing.
    use ppda::prelude::*;

    let topology = Topology::flocklab();
    let (config, aggregators) = aggregator_setup(&topology);
    let k = config.degree;
    let colluders: Vec<u16> = aggregators[..k].to_vec();
    let baseline = SecrecyAnalysis::new(k, &aggregators, &colluders);
    assert!(baseline.secret_hidden());

    let events = vec![
        MembershipEvent::crash(2, aggregators[0]),
        MembershipEvent::leave(4, aggregators[1]),
        MembershipEvent::rejoin(9, aggregators[0]),
    ];
    let deployment = Deployment::builder()
        .topology(topology.clone())
        .config(config)
        .protocol(ProtocolKind::S4)
        .seed(0xD15C)
        .membership(events)
        .build()
        .unwrap();
    let mut driver = deployment.driver();
    let mut patched_rounds = 0;
    for _ in 0..16 {
        let report = driver.step().unwrap();
        if report.membership_patch().is_some() {
            patched_rounds += 1;
        }
        let destinations = driver.plan().destinations().to_vec();
        let now = SecrecyAnalysis::new(k, &destinations, &colluders);
        assert!(
            now.observed_points() <= baseline.observed_points(),
            "churn cannot add observations"
        );
        assert!(
            now.margin() >= baseline.margin(),
            "churn cannot shrink the secrecy margin"
        );
        assert!(now.secret_hidden());

        // Even a fresh collusion of k *current* aggregators stays blind.
        let worst: Vec<u16> = destinations[..k.min(destinations.len())].to_vec();
        assert!(SecrecyAnalysis::new(k, &destinations, &worst).secret_hidden());
    }
    assert!(patched_rounds >= 2, "the churn must actually re-elect");
}

#[test]
fn tamper_forgeries_are_detected_across_testbeds() {
    // The active-adversary property the integrity subsystem exists for:
    // on both real testbed models and both protocol variants, a seeded
    // cheating aggregator that forges its reported sums is caught by the
    // sum audit — while the identical deployment (same seeds, same
    // coordinates) with the adversary removed renders `Verified`.
    use ppda::prelude::*;

    for topology in [Topology::flocklab(), Topology::dcube()] {
        for protocol in [ProtocolKind::S3, ProtocolKind::S4] {
            let config = ppda::mpc::ProtocolConfig::builder(topology.len())
                .sources(6)
                .ntx_sharing(7)
                .ntx_reconstruction(7)
                .integrity(IntegrityMode::On)
                .build()
                .unwrap();
            let run = |tamper: TamperPlan| {
                let deployment = Deployment::builder()
                    .topology(topology.clone())
                    .config(config.clone())
                    .protocol(protocol)
                    .seed(0x7A3)
                    .tamper(tamper)
                    .build()
                    .unwrap();
                let mut driver = deployment.driver();
                let reports: Vec<RoundReport> = (0..4).map(|_| driver.step().unwrap()).collect();
                (reports, driver.stats())
            };

            let (tampered, stats) = run(TamperPlan::forging(0xBAD, 1.0).with_lane_swap(0.0));
            for report in &tampered {
                assert!(
                    report.integrity().is_tampered(),
                    "{protocol:?}: an always-forging aggregator must be caught"
                );
                assert!(matches!(
                    report.require_verified(),
                    Err(ppda::mpc::MpcError::IntegrityViolation { .. })
                ));
            }
            assert_eq!(stats.audited_rounds, 4);
            assert_eq!(stats.tampered_rounds, 4);

            let (honest, stats) = run(TamperPlan::none());
            for report in &honest {
                assert!(
                    report.integrity().is_verified(),
                    "{protocol:?}: same seeds without the adversary must verify"
                );
                report.require_verified().unwrap();
            }
            assert_eq!(stats.audited_rounds, 4);
            assert_eq!(stats.tampered_rounds, 0);
        }
    }
}

#[test]
fn honest_integrity_rounds_match_integrity_off_reports() {
    // Enabling integrity must not perturb the protocol itself: an honest
    // integrity-on round carries the `Verified` verdict but is otherwise
    // byte-identical to the same round with integrity off — identical
    // aggregates, transport statistics, survivor sets and fault reports.
    use ppda::prelude::*;

    let topology = Topology::flocklab();
    let run = |mode: IntegrityMode| {
        let config = ppda::mpc::ProtocolConfig::builder(topology.len())
            .sources(6)
            .integrity(mode)
            .build()
            .unwrap();
        let deployment = Deployment::builder()
            .topology(topology.clone())
            .config(config)
            .protocol(ProtocolKind::S4)
            .faults(ppda::mpc::FaultPlan::lossy(0xFA, 0.05))
            .seed(0x0FF)
            .build()
            .unwrap();
        let mut driver = deployment.driver();
        (0..6)
            .map(|_| driver.step().unwrap())
            .collect::<Vec<RoundReport>>()
    };

    let on = run(IntegrityMode::On);
    let off = run(IntegrityMode::Off);
    for (a, b) in on.iter().zip(&off) {
        assert!(a.integrity().is_verified(), "honest rounds must verify");
        assert_eq!(b.integrity(), IntegrityVerdict::Unchecked);
        let mut a = a.clone();
        a.outcome.integrity = IntegrityVerdict::Unchecked;
        a.degraded.integrity = IntegrityVerdict::Unchecked;
        assert_eq!(&a, b, "the verdict must be the only difference");
    }
}

#[test]
fn tamper_metadata_is_secret_independent() {
    // Like fault draws, the tamper layer's decisions (which aggregator
    // cheats, on which lane, by how much) and the audit's detection
    // metadata (verdict, flagged lane, flagged aggregator) are pure
    // functions of seeds and coordinates — NEVER of the secrets. A
    // colluder watching verdicts learns zero bits about any reading.
    use ppda::prelude::*;

    let topology = Topology::flocklab();
    let config = ppda::mpc::ProtocolConfig::builder(topology.len())
        .sources(6)
        .integrity(IntegrityMode::On)
        .build()
        .unwrap();
    let plan = RoundPlan::new(&topology, &config, ProtocolKind::S4).unwrap();
    let faults = ppda::mpc::FaultPlan::none();
    let tamper = TamperPlan::forging(0xBAD, 0.5).with_bit_flip(0.2);
    let failed = vec![false; topology.len()];
    let secrets_a: Vec<u64> = (0..6u64).map(|i| 100 + i).collect();
    let secrets_b: Vec<u64> = (0..6u64).map(|i| 65_000 - 7 * i).collect();
    let mut executor = plan.executor();
    for seed in [4u64, 17, 0xC0FFEE] {
        let a = executor
            .run_epoch_tampered(config.round_id, seed, &secrets_a, &failed, &faults, &tamper)
            .unwrap();
        let b = executor
            .run_epoch_tampered(config.round_id, seed, &secrets_b, &failed, &faults, &tamper)
            .unwrap();
        assert_eq!(
            a.degraded.integrity, b.degraded.integrity,
            "detection metadata must not depend on the secrets (seed {seed})"
        );
        assert_eq!(a.degraded.survivors, b.degraded.survivors);
        assert_ne!(
            a.round.expected_sums, b.round.expected_sums,
            "sanity: the readings really differ"
        );
    }
}
