//! The plan layer's correctness contract: executing rounds over a reused
//! [`RoundPlan`] must be **byte-identical** to the legacy single-shot path
//! (`S3Protocol::run` / `S4Protocol::run`, which compile a fresh plan per
//! call) — for both protocols, on both testbeds, with and without explicit
//! inputs and failure injection.

use ppda::mpc::{
    AggregationSession, ProtocolConfig, ProtocolKind, RoundPlan, S3Protocol, S4Protocol,
    SessionProtocol,
};
use ppda::topology::Topology;

fn testbeds() -> Vec<(Topology, ProtocolConfig)> {
    let flocklab = Topology::flocklab();
    let dcube = Topology::dcube();
    let flocklab_config = ProtocolConfig::builder(flocklab.len())
        .sources(6)
        .build()
        .unwrap();
    let dcube_config = ProtocolConfig::builder(dcube.len())
        .sources(7)
        .ntx_sharing(7)
        .ntx_reconstruction(7)
        .build()
        .unwrap();
    vec![(flocklab, flocklab_config), (dcube, dcube_config)]
}

#[test]
fn reused_plan_matches_single_shot_s3_and_s4() {
    for (topology, config) in testbeds() {
        for kind in [ProtocolKind::S3, ProtocolKind::S4] {
            let plan = RoundPlan::new(&topology, &config, kind).unwrap();
            for seed in [1u64, 7, 42, 0xBEEF] {
                let planned = plan.run(seed).unwrap();
                let single_shot = match kind {
                    ProtocolKind::S3 => S3Protocol::new(config.clone()).run(&topology, seed),
                    ProtocolKind::S4 => S4Protocol::new(config.clone()).run(&topology, seed),
                }
                .unwrap();
                assert_eq!(
                    planned,
                    single_shot,
                    "{} on {} diverged at seed {seed}",
                    kind.name(),
                    topology.name()
                );
            }
        }
    }
}

#[test]
fn reused_plan_matches_single_shot_with_failures() {
    for (topology, config) in testbeds() {
        let n = topology.len();
        let secrets: Vec<u64> = (0..config.sources.len() as u64).map(|i| 100 + i).collect();
        let mut failed = vec![false; n];
        failed[1] = true;
        failed[n - 1] = true;
        for kind in [ProtocolKind::S3, ProtocolKind::S4] {
            let plan = RoundPlan::new(&topology, &config, kind).unwrap();
            for seed in [3u64, 19] {
                let planned = plan.run_with(seed, &secrets, &failed).unwrap();
                let single_shot =
                    match kind {
                        ProtocolKind::S3 => S3Protocol::new(config.clone())
                            .run_with(&topology, seed, &secrets, &failed),
                        ProtocolKind::S4 => S4Protocol::new(config.clone())
                            .run_with(&topology, seed, &secrets, &failed),
                    }
                    .unwrap();
                assert_eq!(
                    planned,
                    single_shot,
                    "{} on {} diverged under failures at seed {seed}",
                    kind.name(),
                    topology.name()
                );
            }
        }
    }
}

#[test]
fn plan_rounds_are_independent_of_execution_order() {
    // Replaying a seed after other rounds ran in between must give the
    // same outcome: the plan carries no mutable round state.
    let (topology, config) = testbeds().remove(0);
    let plan = RoundPlan::new(&topology, &config, ProtocolKind::S4).unwrap();
    let first = plan.run(11).unwrap();
    for seed in [5u64, 23, 99] {
        plan.run(seed).unwrap();
    }
    let again = plan.run(11).unwrap();
    assert_eq!(first, again);
}

#[test]
fn session_epochs_match_single_shot_at_advanced_round_ids() {
    // A session reuses one plan across epochs while advancing the round
    // id; each epoch must equal a fresh single-shot run of a config with
    // that round id (regression guard for plan staleness).
    for (topology, config) in testbeds() {
        let mut session = AggregationSession::new(
            topology.clone(),
            config.clone(),
            SessionProtocol::S4,
            0xFEED,
        )
        .unwrap();
        for epoch in 0..3u64 {
            let round_id = session.round_id();
            let via_session = session.next_round().unwrap();

            let mut epoch_config = config.clone();
            epoch_config.round_id = round_id;
            let seed = ppda::sim::derive_stream(0xFEED, epoch);
            let single_shot = S4Protocol::new(epoch_config).run(&topology, seed).unwrap();
            assert_eq!(
                via_session,
                single_shot,
                "epoch {epoch} on {} diverged",
                topology.name()
            );
        }
    }
}

#[test]
fn owned_plan_matches_borrowed_plan() {
    let (topology, config) = testbeds().remove(0);
    let borrowed = RoundPlan::new(&topology, &config, ProtocolKind::S4).unwrap();
    let owned = RoundPlan::new(&topology, &config, ProtocolKind::S4)
        .unwrap()
        .into_owned();
    for seed in [2u64, 13] {
        assert_eq!(borrowed.run(seed).unwrap(), owned.run(seed).unwrap());
    }
}
