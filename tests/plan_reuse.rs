//! The plan layer's correctness contract: executing rounds over a reused
//! [`RoundPlan`] must be **byte-identical** to the legacy single-shot path
//! (`S3Protocol::run` / `S4Protocol::run`, which compile a fresh plan per
//! call) — for both protocols, on both testbeds, with and without explicit
//! inputs and failure injection. The batched executor extends the same
//! contract: a 1-lane [`RoundExecutor`](ppda::mpc::RoundExecutor) round is
//! byte-identical to the scalar path.
#![allow(deprecated)] // the legacy single-shot wrappers are the oracle here

use ppda::mpc::{
    AggregationSession, MpcError, ProtocolConfig, ProtocolKind, RoundPlan, S3Protocol, S4Protocol,
    SessionProtocol,
};
use ppda::topology::Topology;

fn testbeds() -> Vec<(Topology, ProtocolConfig)> {
    let flocklab = Topology::flocklab();
    let dcube = Topology::dcube();
    let flocklab_config = ProtocolConfig::builder(flocklab.len())
        .sources(6)
        .build()
        .unwrap();
    let dcube_config = ProtocolConfig::builder(dcube.len())
        .sources(7)
        .ntx_sharing(7)
        .ntx_reconstruction(7)
        .build()
        .unwrap();
    vec![(flocklab, flocklab_config), (dcube, dcube_config)]
}

#[test]
fn reused_plan_matches_single_shot_s3_and_s4() {
    for (topology, config) in testbeds() {
        for kind in [ProtocolKind::S3, ProtocolKind::S4] {
            let plan = RoundPlan::new(&topology, &config, kind).unwrap();
            for seed in [1u64, 7, 42, 0xBEEF] {
                let planned = plan.run(seed).unwrap();
                let single_shot = match kind {
                    ProtocolKind::S3 => S3Protocol::new(config.clone()).run(&topology, seed),
                    ProtocolKind::S4 => S4Protocol::new(config.clone()).run(&topology, seed),
                }
                .unwrap();
                assert_eq!(
                    planned,
                    single_shot,
                    "{} on {} diverged at seed {seed}",
                    kind.name(),
                    topology.name()
                );
            }
        }
    }
}

#[test]
fn reused_plan_matches_single_shot_with_failures() {
    for (topology, config) in testbeds() {
        let n = topology.len();
        let secrets: Vec<u64> = (0..config.sources.len() as u64).map(|i| 100 + i).collect();
        let mut failed = vec![false; n];
        failed[1] = true;
        failed[n - 1] = true;
        for kind in [ProtocolKind::S3, ProtocolKind::S4] {
            let plan = RoundPlan::new(&topology, &config, kind).unwrap();
            for seed in [3u64, 19] {
                let planned = plan.run_with(seed, &secrets, &failed).unwrap();
                let single_shot =
                    match kind {
                        ProtocolKind::S3 => S3Protocol::new(config.clone())
                            .run_with(&topology, seed, &secrets, &failed),
                        ProtocolKind::S4 => S4Protocol::new(config.clone())
                            .run_with(&topology, seed, &secrets, &failed),
                    }
                    .unwrap();
                assert_eq!(
                    planned,
                    single_shot,
                    "{} on {} diverged under failures at seed {seed}",
                    kind.name(),
                    topology.name()
                );
            }
        }
    }
}

#[test]
fn plan_rounds_are_independent_of_execution_order() {
    // Replaying a seed after other rounds ran in between must give the
    // same outcome: the plan carries no mutable round state.
    let (topology, config) = testbeds().remove(0);
    let plan = RoundPlan::new(&topology, &config, ProtocolKind::S4).unwrap();
    let first = plan.run(11).unwrap();
    for seed in [5u64, 23, 99] {
        plan.run(seed).unwrap();
    }
    let again = plan.run(11).unwrap();
    assert_eq!(first, again);
}

#[test]
fn session_epochs_match_single_shot_at_advanced_round_ids() {
    // A session reuses one plan across epochs while advancing the round
    // id; each epoch must equal a fresh single-shot run of a config with
    // that round id (regression guard for plan staleness).
    for (topology, config) in testbeds() {
        let mut session = AggregationSession::new(
            topology.clone(),
            config.clone(),
            SessionProtocol::S4,
            0xFEED,
        )
        .unwrap();
        for epoch in 0..3u64 {
            let round_id = session.round_id();
            let via_session = session.next_round().unwrap();

            let mut epoch_config = config.clone();
            epoch_config.round_id = round_id;
            let seed = ppda::sim::derive_stream(0xFEED, epoch);
            let single_shot = S4Protocol::new(epoch_config).run(&topology, seed).unwrap();
            assert_eq!(
                via_session,
                single_shot,
                "epoch {epoch} on {} diverged",
                topology.name()
            );
        }
    }
}

#[test]
fn single_lane_executor_is_byte_identical_to_scalar_path() {
    // The batching contract: with B = 1 the executor draws the same DRBG
    // streams, seals the same ciphertexts, simulates the same transport
    // and reconstructs the same aggregates as the scalar path — the
    // outcome structures must be *equal*, field for field.
    for (topology, config) in testbeds() {
        for kind in [ProtocolKind::S3, ProtocolKind::S4] {
            let plan = RoundPlan::new(&topology, &config, kind).unwrap();
            let mut executor = plan.executor();
            for seed in [1u64, 7, 42, 0xBEEF] {
                let scalar = plan.run(seed).unwrap();
                let batched = executor.run(seed).unwrap().into_scalar().unwrap();
                assert_eq!(
                    batched,
                    scalar,
                    "{} on {} diverged at seed {seed}",
                    kind.name(),
                    topology.name()
                );
            }
        }
    }
}

#[test]
fn single_lane_executor_matches_scalar_under_failures() {
    for (topology, config) in testbeds() {
        let n = topology.len();
        let secrets: Vec<u64> = (0..config.sources.len() as u64).map(|i| 100 + i).collect();
        let mut failed = vec![false; n];
        failed[1] = true;
        failed[n - 1] = true;
        for kind in [ProtocolKind::S3, ProtocolKind::S4] {
            let plan = RoundPlan::new(&topology, &config, kind).unwrap();
            let mut executor = plan.executor();
            for seed in [3u64, 19] {
                let scalar = plan.run_with(seed, &secrets, &failed).unwrap();
                let batched = executor
                    .run_with(seed, &secrets, &failed)
                    .unwrap()
                    .into_scalar()
                    .unwrap();
                assert_eq!(
                    batched,
                    scalar,
                    "{} on {} diverged under failures at seed {seed}",
                    kind.name(),
                    topology.name()
                );
            }
        }
    }
}

#[test]
fn batched_lanes_aggregate_independent_readings() {
    // A 4-lane round on both testbeds: each lane's aggregate must equal
    // the sum of that lane's readings over live sources, at one round's
    // transport cost (the transport stats match the 1-lane chain shape).
    for (topology, base_config) in testbeds() {
        let config = {
            let mut c = base_config.clone();
            c.batch = 4;
            c
        };
        let plan = RoundPlan::new(&topology, &config, ProtocolKind::S4).unwrap();
        let mut executor = plan.executor();
        let sources = config.sources.len();
        // secrets[si * 4 + lane] = 1000·(lane+1) + si
        let secrets: Vec<u64> = (0..sources as u64)
            .flat_map(|si| (0..4u64).map(move |lane| 1000 * (lane + 1) + si))
            .collect();
        let outcome = executor
            .run_with(4, &secrets, &vec![false; topology.len()])
            .unwrap();
        assert_eq!(outcome.lanes, 4);
        for lane in 0..4u64 {
            let expected: u64 = (0..sources as u64).map(|si| 1000 * (lane + 1) + si).sum();
            assert_eq!(
                outcome.expected_sums[lane as usize],
                expected,
                "lane {lane} on {}",
                topology.name()
            );
        }
        // Radio loss can leave individual nodes without an aggregate (as
        // in the scalar protocol); every node that reconstructed must hold
        // every lane's correct sum.
        let reconstructed = outcome
            .live_nodes()
            .filter(|n| n.aggregates.is_some())
            .count();
        assert!(
            reconstructed > 0,
            "no node reconstructed on {}",
            topology.name()
        );
        for node in outcome.live_nodes() {
            if let Some(aggs) = &node.aggregates {
                assert_eq!(aggs, &outcome.expected_sums, "on {}", topology.name());
            }
        }
        assert!(
            outcome.into_scalar().is_none(),
            "4 lanes have no scalar form"
        );
    }
}

#[test]
fn batched_rounds_replay_deterministically() {
    let (topology, mut config) = testbeds().remove(0);
    config.batch = 8;
    let plan = RoundPlan::new(&topology, &config, ProtocolKind::S4).unwrap();
    let mut a = plan.executor();
    let mut b = plan.executor();
    for seed in [2u64, 9, 77] {
        assert_eq!(a.run(seed).unwrap(), b.run(seed).unwrap());
    }
    // Scratch reuse must not leak state between rounds: replay after
    // other work gives the same outcome.
    let first = a.run(11).unwrap();
    a.run(12).unwrap();
    assert_eq!(a.run(11).unwrap(), first);
}

#[test]
fn scalar_path_rejects_batched_plans() {
    let (topology, mut config) = testbeds().remove(0);
    config.batch = 4;
    let plan = RoundPlan::new(&topology, &config, ProtocolKind::S4).unwrap();
    assert!(matches!(plan.run(1), Err(MpcError::InvalidConfig { .. })));
}

#[test]
fn owned_plan_matches_borrowed_plan() {
    let (topology, config) = testbeds().remove(0);
    let borrowed = RoundPlan::new(&topology, &config, ProtocolKind::S4).unwrap();
    let owned = RoundPlan::new(&topology, &config, ProtocolKind::S4)
        .unwrap()
        .into_owned();
    for seed in [2u64, 13] {
        assert_eq!(borrowed.run(seed).unwrap(), owned.run(seed).unwrap());
    }
}
