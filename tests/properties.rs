//! Cross-crate property tests: protocol invariants over randomized
//! configurations on small synthetic topologies (kept small so the whole
//! suite stays fast in debug builds).

use proptest::prelude::*;

use ppda::mpc::S4Protocol;
use ppda_testkit::{grid9, grid9_config};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any reading vector and seed, every completing node computes the
    /// field sum of the live sources' readings.
    #[test]
    fn s4_aggregate_is_field_sum(
        readings in prop::collection::vec(0u64..10_000, 9),
        seed in any::<u64>(),
    ) {
        let topology = grid9();
        let config = grid9_config().build().unwrap();
        let outcome = S4Protocol::new(config)
            .run_with(&topology, seed, &readings, &[false; 9])
            .unwrap();
        let expected: u64 = readings.iter().sum::<u64>() % ppda::field::Gf31::modulus();
        prop_assert_eq!(outcome.expected_sum, expected);
        for node in outcome.live_nodes() {
            if let Some(got) = node.aggregate {
                prop_assert_eq!(got, expected);
            }
        }
    }

    /// Node latencies never exceed the scheduled round duration, and the
    /// radio ledger never exceeds it either.
    #[test]
    fn metrics_respect_the_schedule(seed in any::<u64>(), sources in 2usize..9) {
        let topology = grid9();
        let config = grid9_config().sources(sources).build().unwrap();
        let outcome = S4Protocol::new(config).run(&topology, seed).unwrap();
        let budget = outcome.scheduled_round_ms() * 1.01;
        for node in outcome.live_nodes() {
            if let Some(latency) = node.latency {
                prop_assert!(latency.as_millis_f64() <= budget);
            }
            prop_assert!(node.radio_on.as_millis_f64() <= budget);
        }
    }

    /// Failure masks never crash the protocol, and failed nodes report
    /// no activity.
    #[test]
    fn failure_injection_is_safe(
        seed in any::<u64>(),
        fail_bits in prop::collection::vec(any::<bool>(), 9),
    ) {
        let topology = grid9();
        // Keep at least 6 nodes alive so an aggregator majority can exist.
        let mut failed = fail_bits;
        let alive = failed.iter().filter(|&&f| !f).count();
        if alive < 6 {
            for f in failed.iter_mut() {
                *f = false;
            }
        }
        let config = grid9_config()
            .sources_explicit(
                (0..9u16).filter(|&v| !failed[v as usize]).take(4).collect(),
            )
            .build()
            .unwrap();
        let readings: Vec<u64> = (0..config.sources.len() as u64).map(|i| i + 1).collect();
        let outcome = S4Protocol::new(config)
            .run_with(&topology, seed, &readings, &failed)
            .unwrap();
        for (v, node) in outcome.nodes.iter().enumerate() {
            if failed[v] {
                prop_assert!(node.failed);
                prop_assert_eq!(node.aggregate, None);
                prop_assert_eq!(node.radio_on.as_micros(), 0);
            }
        }
    }

    /// The protocol is a deterministic function of (config, seed, inputs).
    #[test]
    fn replay_determinism(seed in any::<u64>()) {
        let topology = grid9();
        let config = grid9_config().build().unwrap();
        let a = S4Protocol::new(config.clone()).run(&topology, seed).unwrap();
        let b = S4Protocol::new(config).run(&topology, seed).unwrap();
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            prop_assert_eq!(x.aggregate, y.aggregate);
            prop_assert_eq!(x.latency, y.latency);
        }
    }
}
