//! Cross-crate property tests: protocol invariants over randomized
//! configurations on small synthetic topologies (kept small so the whole
//! suite stays fast in debug builds).
#![allow(deprecated)] // this suite exercises the legacy single-shot oracle

use proptest::prelude::*;

use ppda::mpc::S4Protocol;
use ppda_testkit::{grid9, grid9_config};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any reading vector and seed, every completing node computes the
    /// field sum of the live sources' readings.
    #[test]
    fn s4_aggregate_is_field_sum(
        readings in prop::collection::vec(0u64..10_000, 9),
        seed in any::<u64>(),
    ) {
        let topology = grid9();
        let config = grid9_config().build().unwrap();
        let outcome = S4Protocol::new(config)
            .run_with(&topology, seed, &readings, &[false; 9])
            .unwrap();
        let expected: u64 = readings.iter().sum::<u64>() % ppda::field::Gf31::modulus();
        prop_assert_eq!(outcome.expected_sum, expected);
        for node in outcome.live_nodes() {
            if let Some(got) = node.aggregate {
                prop_assert_eq!(got, expected);
            }
        }
    }

    /// Node latencies never exceed the scheduled round duration, and the
    /// radio ledger never exceeds it either.
    #[test]
    fn metrics_respect_the_schedule(seed in any::<u64>(), sources in 2usize..9) {
        let topology = grid9();
        let config = grid9_config().sources(sources).build().unwrap();
        let outcome = S4Protocol::new(config).run(&topology, seed).unwrap();
        let budget = outcome.scheduled_round_ms() * 1.01;
        for node in outcome.live_nodes() {
            if let Some(latency) = node.latency {
                prop_assert!(latency.as_millis_f64() <= budget);
            }
            prop_assert!(node.radio_on.as_millis_f64() <= budget);
        }
    }

    /// Failure masks never crash the protocol, and failed nodes report
    /// no activity.
    #[test]
    fn failure_injection_is_safe(
        seed in any::<u64>(),
        fail_bits in prop::collection::vec(any::<bool>(), 9),
    ) {
        let topology = grid9();
        // Keep at least 6 nodes alive so an aggregator majority can exist.
        let mut failed = fail_bits;
        let alive = failed.iter().filter(|&&f| !f).count();
        if alive < 6 {
            for f in failed.iter_mut() {
                *f = false;
            }
        }
        let config = grid9_config()
            .sources_explicit(
                (0..9u16).filter(|&v| !failed[v as usize]).take(4).collect(),
            )
            .build()
            .unwrap();
        let readings: Vec<u64> = (0..config.sources.len() as u64).map(|i| i + 1).collect();
        let outcome = S4Protocol::new(config)
            .run_with(&topology, seed, &readings, &failed)
            .unwrap();
        for (v, node) in outcome.nodes.iter().enumerate() {
            if failed[v] {
                prop_assert!(node.failed);
                prop_assert_eq!(node.aggregate, None);
                prop_assert_eq!(node.radio_on.as_micros(), 0);
            }
        }
    }

    /// The protocol is a deterministic function of (config, seed, inputs).
    #[test]
    fn replay_determinism(seed in any::<u64>()) {
        let topology = grid9();
        let config = grid9_config().build().unwrap();
        let a = S4Protocol::new(config.clone()).run(&topology, seed).unwrap();
        let b = S4Protocol::new(config).run(&topology, seed).unwrap();
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            prop_assert_eq!(x.aggregate, y.aggregate);
            prop_assert_eq!(x.latency, y.latency);
        }
    }

    /// Batched share generation is the scalar path, lane for lane, under
    /// one shared RNG stream.
    #[test]
    fn split_secret_batch_equals_sequential_scalar_splits(
        secrets in prop::collection::vec(0u64..2_000_000_000, 1..9),
        degree in 1usize..5,
        holders in 6usize..12,
        seed in any::<u64>(),
    ) {
        use ppda::field::{share_x, Gf31, Mersenne31};
        use ppda::sss::{split_secret, split_secret_batch};

        let constants: Vec<Gf31> = secrets.iter().map(|&s| Gf31::new(s)).collect();
        let xs: Vec<Gf31> = (0..holders).map(share_x::<Mersenne31>).collect();

        let mut rng_batch = ppda::sim::Xoshiro256::seed_from(seed);
        let batch = split_secret_batch(&constants, degree, &xs, &mut rng_batch).unwrap();

        let mut rng_scalar = ppda::sim::Xoshiro256::seed_from(seed);
        for (lane, &c) in constants.iter().enumerate() {
            let scalar = split_secret(c, degree, &xs, &mut rng_scalar).unwrap();
            for (i, sh) in scalar.iter().enumerate() {
                prop_assert_eq!(batch.share(i, lane), *sh);
            }
        }
    }

    /// Incremental plan patching equals full recompilation for *any*
    /// membership event stream: same outcomes, same degraded reports,
    /// patches applied at the same rounds.
    #[test]
    fn plan_patching_matches_recompile_for_random_event_streams(
        count in 0usize..8,
        rounds in prop::collection::vec(1u32..12, 8),
        nodes in prop::collection::vec(3u16..9, 8),
        kinds in prop::collection::vec(0usize..4, 8),
        seed in any::<u64>(),
    ) {
        use ppda::prelude::*;

        // Nodes 0..3 (the sources) stay members throughout, so the
        // destination set never empties; nodes 3..9 churn freely —
        // including streams that drop the round below threshold.
        let mut events: Vec<MembershipEvent> = (0..count)
            .map(|i| MembershipEvent {
                round: rounds[i],
                node: nodes[i],
                kind: [
                    MembershipEventKind::Join,
                    MembershipEventKind::Leave,
                    MembershipEventKind::Crash,
                    MembershipEventKind::Rejoin,
                ][kinds[i]],
            })
            .collect();
        events.sort_by_key(|e| e.round);

        let trickle = TrickleConfig { i_min: 1, doublings: 2, k: 2, crash_detection: 1 };
        let build = |mode: MembershipMode| {
            Deployment::builder()
                .topology(grid9())
                .config(grid9_config().sources(3).build().unwrap())
                .protocol(ProtocolKind::S4)
                .seed(seed)
                .membership(events.clone())
                .trickle(trickle)
                .membership_mode(mode)
                .build()
                .expect("churny deployment compiles")
        };
        let patched_deployment = build(MembershipMode::Patch);
        let oracle_deployment = build(MembershipMode::Recompile);
        let mut patched = patched_deployment.driver();
        let mut oracle = oracle_deployment.driver();
        for _ in 0..14 {
            let p = patched.step().expect("patched round runs");
            let r = oracle.step().expect("recompiled round runs");
            prop_assert_eq!(p.round_id, r.round_id);
            prop_assert_eq!(&p.outcome, &r.outcome);
            prop_assert_eq!(&p.degraded, &r.degraded);
            prop_assert_eq!(
                p.membership_patch().is_some(),
                r.membership_patch().is_some()
            );

            // Safety under arbitrary churn: a below-threshold round
            // escalates to AggregationFailed — it never silently yields
            // a wrong sum, and no live node ever reports one.
            if let RecoveryStatus::Failed { missing } = p.recovery() {
                prop_assert!(missing > 0);
                prop_assert!(p.degraded.require_recovered().is_err());
            }
            for node in p.outcome.live_nodes() {
                if let Some(sums) = &node.aggregates {
                    prop_assert_eq!(sums, &p.outcome.expected_sums);
                }
            }
        }
        prop_assert_eq!(patched.stats().plan_patches, oracle.stats().plan_patches);
    }

    /// Batched reconstruction over the canonical weights equals per-lane
    /// scalar reconstruction for every lane.
    #[test]
    fn reconstruct_batch_equals_per_lane_reconstruct(
        secrets in prop::collection::vec(0u64..2_000_000_000, 1..9),
        degree in 1usize..5,
        seed in any::<u64>(),
    ) {
        use ppda::field::{share_x, Gf31, Mersenne31};
        use ppda::sss::{split_secret_batch, ReconstructionPlan};

        let constants: Vec<Gf31> = secrets.iter().map(|&s| Gf31::new(s)).collect();
        let xs: Vec<Gf31> = (0..degree + 1).map(share_x::<Mersenne31>).collect();
        let plan = ReconstructionPlan::new(&xs).unwrap();

        let mut rng = ppda::sim::Xoshiro256::seed_from(seed);
        let batch = split_secret_batch(&constants, degree, &xs, &mut rng).unwrap();
        let slab: Vec<Gf31> = (0..xs.len())
            .flat_map(|i| batch.values_at(i).to_vec())
            .collect();
        let lanes = plan.reconstruct_batch(constants.len(), &slab).unwrap();
        prop_assert_eq!(&lanes, &constants);
        for (lane, &c) in constants.iter().enumerate() {
            let shares: Vec<_> = (0..xs.len()).map(|i| batch.share(i, lane)).collect();
            prop_assert_eq!(plan.reconstruct(&shares).unwrap(), c);
        }
    }
}
