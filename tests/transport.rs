//! Integration tests of the CT transport on the testbed models: Glossy
//! coverage, MiniCast's coverage-vs-NTX behaviour, schedule arithmetic.

use ppda::ct::{ChainSpec, Glossy, GlossyConfig, MiniCast, MiniCastConfig};
use ppda::radio::FrameSpec;
use ppda::sim::Xoshiro256;
use ppda::topology::Topology;

fn frame() -> FrameSpec {
    FrameSpec::new(8, 4).unwrap()
}

#[test]
fn glossy_covers_both_testbeds() {
    for topology in [Topology::flocklab(), Topology::dcube()] {
        let glossy = Glossy::new(&topology, frame(), GlossyConfig::default());
        let mut covered = 0;
        let runs = 20;
        for seed in 0..runs {
            let r = glossy.run(&mut Xoshiro256::seed_from(seed));
            if r.reliability() == 1.0 {
                covered += 1;
            }
        }
        assert!(
            covered >= runs - 1,
            "{}: only {covered}/{runs} floods covered everyone",
            topology.name()
        );
    }
}

#[test]
fn glossy_latency_in_milliseconds_range() {
    // A flood over a 4-hop network of ~1.3 ms slots completes within tens
    // of milliseconds — the property that makes CT attractive at all.
    let topology = Topology::flocklab();
    let glossy = Glossy::new(&topology, frame(), GlossyConfig::default());
    let r = glossy.run(&mut Xoshiro256::seed_from(1));
    let latency = r.flood_latency().expect("flood covers");
    assert!(latency.as_millis() < 50, "flood took {latency}");
}

#[test]
fn minicast_coverage_knee_on_flocklab() {
    // The §III observation: steep coverage growth at low NTX, slow tail.
    let topology = Topology::flocklab();
    let curve = MiniCast::coverage_vs_ntx(&topology, frame(), &[1, 2, 4, 8, 14], 10, 99);
    let at = |ntx: u32| {
        curve
            .iter()
            .find(|&&(n, _)| n == ntx)
            .map(|&(_, c)| c)
            .expect("swept value")
    };
    // Low NTX already moves most of the data...
    assert!(at(4) > 0.80, "coverage at ntx=4: {}", at(4));
    // ...but full coverage needs much more.
    assert!(at(4) < 0.9999);
    assert!(at(14) > 0.999, "coverage at ntx=14: {}", at(14));
    // The marginal gain flattens: first doubling gains more than the last.
    let gain_early = at(2) - at(1);
    let gain_late = at(14) - at(8);
    assert!(gain_early > gain_late);
}

#[test]
fn minicast_all_to_all_delivers_on_dcube_at_high_ntx() {
    let topology = Topology::dcube();
    let owners: Vec<u16> = (0..topology.len() as u16).collect();
    let chain = ChainSpec::new(frame(), owners).unwrap();
    let mc = MiniCast::new(
        &topology,
        chain,
        MiniCastConfig {
            ntx: 14,
            ..MiniCastConfig::default()
        },
    );
    let r = mc.run(&mut Xoshiro256::seed_from(5));
    assert!(r.coverage() > 0.995, "coverage {}", r.coverage());
}

#[test]
fn attenuation_degrades_coverage() {
    let topology = Topology::dcube();
    let owners: Vec<u16> = (0..topology.len() as u16).collect();
    let run_at = |att: f64| {
        let chain = ChainSpec::new(frame(), owners.clone()).unwrap();
        let mc = MiniCast::new(
            &topology,
            chain,
            MiniCastConfig {
                ntx: 5,
                attenuation_db: att,
                ..MiniCastConfig::default()
            },
        );
        mc.run(&mut Xoshiro256::seed_from(3)).coverage()
    };
    let calm = run_at(0.0);
    let harsh = run_at(6.0);
    assert!(
        harsh < calm,
        "6 dB of interference must hurt: {calm} vs {harsh}"
    );
}

#[test]
fn chain_cycle_time_arithmetic() {
    // 8-byte payload + 4-byte MIC frame: 6 + 9+8+4+2 = 29 bytes on air
    // -> 928 µs airtime + 300 µs slot overhead = 1228 µs per sub-slot.
    let spec = frame();
    assert_eq!(spec.airtime().as_micros(), 29 * 32);
    assert_eq!(spec.slot_duration().as_micros(), 29 * 32 + 192 + 108);
    let chain = ChainSpec::new(spec, vec![0, 1, 2, 3]).unwrap();
    assert_eq!(
        chain.cycle_duration().as_micros(),
        4 * spec.slot_duration().as_micros()
    );
}

#[test]
fn scheduled_rounds_scale_with_ntx() {
    let topology = Topology::flocklab();
    let owners: Vec<u16> = (0..topology.len() as u16).collect();
    let rounds = |ntx: u32| {
        let chain = ChainSpec::new(frame(), owners.clone()).unwrap();
        MiniCast::new(
            &topology,
            chain,
            MiniCastConfig {
                ntx,
                ..MiniCastConfig::default()
            },
        )
        .round_cycles()
    };
    assert_eq!(rounds(10) - rounds(5), 5);
}

#[test]
fn early_off_saves_radio_time() {
    let topology = Topology::flocklab();
    let owners: Vec<u16> = (0..topology.len() as u16).collect();
    let run = |early: bool| {
        let chain = ChainSpec::new(frame(), owners.clone()).unwrap();
        let mc = MiniCast::new(
            &topology,
            chain,
            MiniCastConfig {
                ntx: 4,
                early_radio_off: early,
                ..MiniCastConfig::default()
            },
        );
        // Trivial predicate: own packet only.
        let failed = vec![false; topology.len()];
        let r = mc.run_with(&mut Xoshiro256::seed_from(8), &failed, |v, have| have[v]);
        r.mean_radio_on_ms()
    };
    assert!(run(true) < run(false));
}
