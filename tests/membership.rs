//! Online-membership conformance: incremental plan patching must be
//! indistinguishable from recompiling the plan from scratch.
//!
//! Contracts enforced here:
//!
//! 1. **Patch ≡ recompile, byte for byte** — a driver in the default
//!    [`MembershipMode::Patch`] produces the same outcome and degraded
//!    report streams as the [`MembershipMode::Recompile`] oracle, for
//!    every membership event kind (join, leave, crash, rejoin), both
//!    protocol variants, lane widths B ∈ {1, 4} and both testbed
//!    topologies. Only the patch *cost accounting* (slots rebuilt, CCMs
//!    reused) may differ: a full recompile reuses nothing.
//! 2. **Aggregator death re-elects from the retained ranking** — when an
//!    S4 aggregator crashes, the patched plan swaps in the next-ranked
//!    node and the round still recovers.
//! 3. **Membership-driven drivers only move forward** — rewinding a
//!    patched driver is [`MpcError::MembershipRegression`], not silent
//!    corruption.
//! 4. **Patching is visible** — applied deltas surface as
//!    [`RoundReport::membership_patch`] and count into
//!    [`DriverStats::plan_patches`].

use ppda::prelude::*;

/// Trickle tuned for short test windows: minimal intervals so a
/// membership announcement converges within a handful of rounds.
fn fast_trickle() -> TrickleConfig {
    TrickleConfig {
        i_min: 1,
        doublings: 2,
        k: 2,
        crash_detection: 1,
    }
}

/// One event of every kind, on the three highest node ids (valid on
/// both testbeds). The join-first node starts absent.
fn all_kinds(n: u16) -> Vec<MembershipEvent> {
    vec![
        MembershipEvent::leave(3, n - 2),
        MembershipEvent::crash(5, n - 3),
        MembershipEvent::join(6, n - 1),
        MembershipEvent::rejoin(10, n - 2),
    ]
}

fn churn_deployment(
    topology: &Topology,
    protocol: ProtocolKind,
    batch: usize,
    events: Vec<MembershipEvent>,
    mode: MembershipMode,
) -> Deployment<'_> {
    let config = ProtocolConfig::builder(topology.len())
        .sources(topology.len())
        .batch(batch)
        .build()
        .expect("config builds");
    Deployment::builder()
        .topology(topology.clone())
        .config(config)
        .protocol(protocol)
        .seed(0xD1FF)
        .membership(events)
        .trickle(fast_trickle())
        .membership_mode(mode)
        .build()
        .expect("deployment compiles")
}

/// Drive `rounds` epochs and return the report stream plus the stats.
fn stream(deployment: &Deployment, rounds: usize) -> (Vec<RoundReport>, DriverStats) {
    let mut driver = deployment.driver();
    let reports = (0..rounds)
        .map(|_| driver.step().expect("round runs"))
        .collect();
    (reports, driver.stats())
}

/// The acceptance differential: every event kind, streamed through both
/// modes, must yield identical outcomes — and the patch records must
/// agree on everything except reuse accounting.
fn assert_patch_matches_recompile(topology: &Topology, protocol: ProtocolKind, batch: usize) {
    let n = topology.len() as u16;
    let rounds = 18;
    let patched = churn_deployment(
        topology,
        protocol,
        batch,
        all_kinds(n),
        MembershipMode::Patch,
    );
    let oracle = churn_deployment(
        topology,
        protocol,
        batch,
        all_kinds(n),
        MembershipMode::Recompile,
    );
    let (patched, patched_stats) = stream(&patched, rounds);
    let (recompiled, oracle_stats) = stream(&oracle, rounds);

    // The event stream must actually land inside the window (leave,
    // crash and join converge early; the late rejoin may not).
    assert!(
        patched_stats.plan_patches >= 3,
        "only {} deltas became effective in {rounds} rounds",
        patched_stats.plan_patches
    );
    assert_eq!(patched_stats.plan_patches, oracle_stats.plan_patches);

    for (p, r) in patched.iter().zip(&recompiled) {
        assert_eq!(p.round_id, r.round_id);
        assert_eq!(p.seed, r.seed);
        assert_eq!(p.outcome, r.outcome, "outcome diverged at {}", p.round_id);
        assert_eq!(
            p.degraded, r.degraded,
            "degraded report diverged at {}",
            p.round_id
        );
        match (p.membership_patch(), r.membership_patch()) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.round, b.round);
                assert_eq!(a.joined, b.joined);
                assert_eq!(a.left, b.left);
                assert_eq!(a.destinations, b.destinations);
                assert_eq!(a.destinations_changed, b.destinations_changed);
            }
            _ => panic!("patch presence diverged at {}", p.round_id),
        }
    }
}

#[test]
fn patch_matches_recompile_flocklab_s3() {
    let t = Topology::flocklab();
    assert_patch_matches_recompile(&t, ProtocolKind::S3, 1);
    assert_patch_matches_recompile(&t, ProtocolKind::S3, 4);
}

#[test]
fn patch_matches_recompile_flocklab_s4() {
    let t = Topology::flocklab();
    assert_patch_matches_recompile(&t, ProtocolKind::S4, 1);
    assert_patch_matches_recompile(&t, ProtocolKind::S4, 4);
}

#[test]
fn patch_matches_recompile_dcube_s3() {
    let t = Topology::dcube();
    assert_patch_matches_recompile(&t, ProtocolKind::S3, 1);
    assert_patch_matches_recompile(&t, ProtocolKind::S3, 4);
}

#[test]
fn patch_matches_recompile_dcube_s4() {
    let t = Topology::dcube();
    assert_patch_matches_recompile(&t, ProtocolKind::S4, 1);
    assert_patch_matches_recompile(&t, ProtocolKind::S4, 4);
}

#[test]
fn leave_patches_reuse_pairwise_ccms() {
    // A leave only shrinks the destination set: every retained
    // (source, destination) pair keeps its derived cipher, so the patch
    // must account real reuse — the whole point of patching over
    // recompiling. S3 makes every node a destination, so any leave
    // shrinks the set.
    let topology = Topology::flocklab();
    let n = topology.len() as u16;
    let deployment = churn_deployment(
        &topology,
        ProtocolKind::S3,
        1,
        vec![MembershipEvent::leave(3, n - 2)],
        MembershipMode::Patch,
    );
    let (reports, stats) = stream(&deployment, 12);
    assert_eq!(stats.plan_patches, 1);
    let patch = reports
        .iter()
        .find_map(|r| r.membership_patch())
        .expect("the leave becomes effective");
    assert_eq!(patch.left, 1);
    assert_eq!(patch.joined, 0);
    assert!(patch.destinations_changed);
    assert!(
        patch.ccm_reused > 0,
        "a leave-only patch must reuse retained pairwise ciphers"
    );
}

#[test]
fn aggregator_death_re_elects_from_retained_ranking() {
    let topology = Topology::flocklab();
    let config = ProtocolConfig::builder(topology.len())
        .sources(topology.len())
        .build()
        .expect("config builds");
    // Find the top-ranked S4 aggregator from a static deployment first.
    let static_deployment = Deployment::builder()
        .topology(topology.clone())
        .config(config.clone())
        .protocol(ProtocolKind::S4)
        .seed(0xD1FF)
        .build()
        .expect("static deployment compiles");
    let victim = static_deployment.plan().destinations()[0];

    let deployment = churn_deployment(
        &topology,
        ProtocolKind::S4,
        1,
        vec![MembershipEvent::crash(3, victim)],
        MembershipMode::Patch,
    );
    let (reports, stats) = stream(&deployment, 12);
    assert_eq!(stats.plan_patches, 1);
    let patched_round = reports
        .iter()
        .find(|r| r.membership_patch().is_some())
        .expect("the crash becomes effective");
    let patch = patched_round.membership_patch().unwrap();
    assert!(patch.destinations_changed);
    // Every round — before, at and after the re-election — recovers and
    // agrees on the correct sum.
    for report in &reports {
        assert!(report.correct(), "round {} wrong", report.round_id);
        assert!(
            report.recovered(),
            "round {} below threshold",
            report.round_id
        );
    }
}

#[test]
fn membership_driven_drivers_only_advance() {
    let topology = Topology::flocklab();
    let n = topology.len() as u16;
    let deployment = churn_deployment(
        &topology,
        ProtocolKind::S4,
        1,
        vec![MembershipEvent::leave(3, n - 2)],
        MembershipMode::Patch,
    );
    let mut driver = deployment.driver();
    driver.round_at(8, 0xFEED).expect("forward round runs");
    let err = driver.round_at(5, 0xFEED).expect_err("rewind must fail");
    match err {
        MpcError::MembershipRegression {
            patched_to,
            requested,
        } => {
            assert_eq!(patched_to, 8);
            assert_eq!(requested, 5);
        }
        other => panic!("expected MembershipRegression, got {other}"),
    }
    // Static drivers (no membership) can replay any round id freely.
    let static_driver = Deployment::builder()
        .topology(topology.clone())
        .config(
            ProtocolConfig::builder(topology.len())
                .sources(topology.len())
                .build()
                .unwrap(),
        )
        .protocol(ProtocolKind::S4)
        .seed(0xD1FF)
        .build()
        .expect("static deployment compiles");
    let mut static_driver = static_driver.driver();
    static_driver.round_at(8, 0xFEED).expect("forward");
    static_driver.round_at(5, 0xFEED).expect("rewind is fine");
}

#[test]
fn fresh_drivers_fast_forward_to_identical_reports() {
    // A driver created mid-campaign must replay the exact same rounds a
    // continuously streaming driver produced — the property the
    // campaign engine's span-parallel execution rests on.
    let topology = Topology::flocklab();
    let n = topology.len() as u16;
    let deployment = churn_deployment(
        &topology,
        ProtocolKind::S4,
        1,
        all_kinds(n),
        MembershipMode::Patch,
    );
    let (continuous, _) = stream(&deployment, 16);
    for start in [0usize, 5, 9, 13] {
        let mut fresh = deployment.driver();
        for (i, expected) in continuous.iter().enumerate().skip(start) {
            let report = fresh.step_at(i as u64).expect("fast-forwarded round runs");
            assert_eq!(&report, expected, "round {} diverged from start {start}", i);
        }
    }
}
