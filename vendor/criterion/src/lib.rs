//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of criterion its benches use: `Criterion::benchmark_group`,
//! `bench_function`, `Bencher::iter` / `iter_batched`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are intentionally simple — warm up, run a fixed number of
//! timed batches, report mean and min per iteration — which is enough to
//! compare orders of magnitude and catch gross regressions. Swap in the
//! real crate when network access is available for publication-grade
//! numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How many measured batches each benchmark runs.
const BATCHES: usize = 12;

/// Target wall-clock time per benchmark (all batches together).
const TARGET: Duration = Duration::from_millis(600);

/// Batch-size hint for [`Bencher::iter_batched`] (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per batch.
    SmallInput,
    /// Large inputs: few iterations per batch.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Benchmark `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: how many iterations fit a batch budget?
        let calib = Instant::now();
        let mut calib_iters = 0u64;
        while calib.elapsed() < TARGET / (BATCHES as u32 * 4) {
            std::hint::black_box(routine());
            calib_iters += 1;
        }
        let per_batch = calib_iters.max(1);
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(routine());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / per_batch as f64);
        }
    }

    /// Benchmark `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm up once.
        std::hint::black_box(routine(setup()));
        for _ in 0..BATCHES {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        let min = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        println!(
            "{name:<44} time: [{} .. {}]",
            format_ns(min),
            format_ns(mean)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A named cluster of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the vendored harness uses a fixed
    /// batch count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.into()));
        self
    }

    /// End the group (output is already flushed per benchmark).
    pub fn finish(self) {}
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(&id.into());
        self
    }
}

/// Bundle benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running one or more benchmark groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_ns_scales() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(1_500.0), "1.50 µs");
        assert_eq!(format_ns(2_500_000.0), "2.50 ms");
    }

    #[test]
    fn iter_batched_runs_setup_per_batch() {
        let mut bencher = Bencher::default();
        let mut setups = 0u32;
        bencher.iter_batched(
            || {
                setups += 1;
            },
            |()| (),
            BatchSize::SmallInput,
        );
        assert!(setups as usize >= BATCHES);
        assert_eq!(bencher.samples_ns.len(), BATCHES);
    }
}
