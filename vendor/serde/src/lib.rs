//! Offline, API-compatible subset of the `serde` traits.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of serde its feature-gated impls use: the four core traits
//! with the primitive methods (`serialize_u64`, `serialize_f64`,
//! `serialize_str`, `serialize_bytes`, sequence begin/end) plus a
//! self-describing [`value::Value`] tree with a built-in serializer /
//! deserializer pair so round-trips can be tested without any data format
//! crate.
//!
//! There is **no derive macro**: workspace types write impls by hand
//! (they are all small). The trait method signatures match real serde, so
//! migrating to the real crate later only adds capability.

#![forbid(unsafe_code)]

pub mod value;

use std::fmt;

/// Serialization error surface: constructible from a message, displayable.
pub trait Error: Sized + fmt::Display + fmt::Debug {
    /// Build an error carrying `msg`.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// A data-format backend for serialization.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type of the format.
    type Error: Error;

    /// Serialize a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;

    /// Serialize an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;

    /// Serialize a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;

    /// Serialize an opaque byte string.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
}

/// A type that can be serialized through any [`Serializer`].
pub trait Serialize {
    /// Drive `serializer` with this value's content.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data-format backend for deserialization.
pub trait Deserializer<'de>: Sized {
    /// Error type of the format.
    type Error: Error;

    /// Deserialize a `u64`.
    fn deserialize_u64(self) -> Result<u64, Self::Error>;

    /// Deserialize an `f64`.
    fn deserialize_f64(self) -> Result<f64, Self::Error>;

    /// Deserialize an owned string.
    fn deserialize_string(self) -> Result<String, Self::Error>;

    /// Deserialize an opaque byte string.
    fn deserialize_byte_buf(self) -> Result<Vec<u8>, Self::Error>;
}

/// A type that can be deserialized from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Construct `Self` from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

impl Serialize for u64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self)
    }
}

impl<'de> Deserialize<'de> for u64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_u64()
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_f64()
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_string()
    }
}

impl Serialize for Vec<u8> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(self)
    }
}

impl<'de> Deserialize<'de> for Vec<u8> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_byte_buf()
    }
}
