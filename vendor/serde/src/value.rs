//! A self-describing value tree with a built-in serializer/deserializer,
//! so feature-gated serde impls can be round-trip tested without a data
//! format crate.

use std::fmt;

use crate::{Deserialize, Deserializer, Error, Serialize, Serializer};

/// One node of the self-describing tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// UTF-8 string.
    Str(String),
    /// Opaque bytes.
    Bytes(Vec<u8>),
}

/// Error raised by the [`Value`] backend.
#[derive(Debug, Clone)]
pub struct ValueError {
    message: String,
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ValueError {}

impl Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError {
            message: msg.to_string(),
        }
    }
}

/// Serializer producing a [`Value`].
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_u64(self, v: u64) -> Result<Value, ValueError> {
        Ok(Value::U64(v))
    }

    fn serialize_f64(self, v: f64) -> Result<Value, ValueError> {
        Ok(Value::F64(v))
    }

    fn serialize_str(self, v: &str) -> Result<Value, ValueError> {
        Ok(Value::Str(v.to_owned()))
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<Value, ValueError> {
        Ok(Value::Bytes(v.to_vec()))
    }
}

/// Deserializer consuming a [`Value`].
pub struct ValueDeserializer {
    value: Value,
}

impl ValueDeserializer {
    /// Wrap a value for deserialization.
    pub fn new(value: Value) -> Self {
        ValueDeserializer { value }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn deserialize_u64(self) -> Result<u64, ValueError> {
        match self.value {
            Value::U64(v) => Ok(v),
            other => Err(ValueError::custom(format!("expected u64, got {other:?}"))),
        }
    }

    fn deserialize_f64(self) -> Result<f64, ValueError> {
        match self.value {
            Value::F64(v) => Ok(v),
            other => Err(ValueError::custom(format!("expected f64, got {other:?}"))),
        }
    }

    fn deserialize_string(self) -> Result<String, ValueError> {
        match self.value {
            Value::Str(v) => Ok(v),
            other => Err(ValueError::custom(format!("expected str, got {other:?}"))),
        }
    }

    fn deserialize_byte_buf(self) -> Result<Vec<u8>, ValueError> {
        match self.value {
            Value::Bytes(v) => Ok(v),
            other => Err(ValueError::custom(format!("expected bytes, got {other:?}"))),
        }
    }
}

/// Serialize `value` into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSerializer)
}

/// Deserialize a `T` out of a [`Value`] tree.
pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer::new(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trip() {
        let v = to_value(&42u64).unwrap();
        assert_eq!(v, Value::U64(42));
        assert_eq!(from_value::<u64>(v).unwrap(), 42);
    }

    #[test]
    fn bytes_round_trip() {
        let v = to_value(&vec![1u8, 2, 3]).unwrap();
        assert_eq!(from_value::<Vec<u8>>(v).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(from_value::<u64>(Value::Str("no".into())).is_err());
    }
}
