//! The [`Strategy`] trait and the integer-range / map combinators.

use std::ops::{Range, RangeInclusive};

use rand::RngCore;

use crate::test_runner::TestRng;

/// A recipe for generating values of a type.
///
/// Unlike the real crate there is no value tree / shrinking; a strategy is
/// just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Sample uniformly from `[0, bound)` (modulo reduction: bias is
/// irrelevant at test-generation quality).
fn below(rng: &mut TestRng, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    raw % bound
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end as u128 - self.start as u128;
                    (self.start as u128 + below(rng, span)) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = *self.end() as u128 - *self.start() as u128 + 1;
                    (*self.start() as u128 + below(rng, span)) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty => $u:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + below(rng, span) as i128) as $t
                }
            }
        )*
    };
}

signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let v = (10u64..20).new_value(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = TestRng::from_seed(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert((0u8..=3).new_value(&mut rng));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn map_applies() {
        let mut rng = TestRng::from_seed(3);
        let s = (0u64..10).prop_map(|v| v * 2);
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn signed_ranges_work() {
        let mut rng = TestRng::from_seed(4);
        for _ in 0..100 {
            let v = (-5i32..5).new_value(&mut rng);
            assert!((-5..5).contains(&v));
        }
    }
}
