//! Deterministic test runner support: config, RNG, case errors.

use rand::RngCore;

/// Per-suite configuration, mirroring `proptest::test_runner::Config`.
///
/// The default case count is 64, overridable via the `PROPTEST_CASES`
/// environment variable (as the real crate does) so CI can pin it.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Config { cases }
    }
}

/// A failed property case: carries the assertion message.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Record a failed assertion.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The generator driving all strategies: SplitMix64, seeded per test.
///
/// The seed is `FNV-1a(test path) ^ PROPTEST_SEED` (the env var defaults
/// to 0), so every test draws an independent but fully reproducible
/// stream, and CI can rotate streams by exporting a different seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derive the RNG for one named test.
    pub fn for_test(path: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let env_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0u64);
        TestRng {
            state: hash ^ env_seed,
        }
    }

    /// Construct directly from a seed (used by this crate's own tests).
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_test_streams_differ() {
        let mut a = TestRng::for_test("mod::a");
        let mut b = TestRng::for_test("mod::b");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn same_test_same_stream() {
        let mut a = TestRng::for_test("mod::a");
        let mut b = TestRng::for_test("mod::a");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
