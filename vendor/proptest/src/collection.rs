//! Collection strategies: `vec(element, size)`.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification for collection strategies: a fixed length or a
/// half-open range of lengths.
#[derive(Debug, Clone)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `S`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate vectors whose elements come from `element` and whose length is
/// drawn from `size` (a `usize` for fixed length, or a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = (self.size.start..self.size.end).new_value(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn fixed_size() {
        let mut rng = TestRng::from_seed(5);
        let v = vec(any::<u8>(), 9).new_value(&mut rng);
        assert_eq!(v.len(), 9);
    }

    #[test]
    fn ranged_size() {
        let mut rng = TestRng::from_seed(6);
        for _ in 0..100 {
            let v = vec(any::<u8>(), 1..5).new_value(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }
}
