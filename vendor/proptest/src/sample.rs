//! Sampling helpers: [`Index`].

/// An abstract index into a collection of as-yet-unknown size, mirroring
/// `proptest::sample::Index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: u64,
}

impl Index {
    /// Wrap a raw draw (used by the `Arbitrary` impl).
    pub fn from_raw(raw: u64) -> Self {
        Index { raw }
    }

    /// Resolve against a concrete collection size.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.raw % len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_bounds() {
        let idx = Index::from_raw(u64::MAX - 3);
        for len in 1..50 {
            assert!(idx.index(len) < len);
        }
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn empty_panics() {
        Index::from_raw(0).index(0);
    }
}
