//! `any::<T>()` — canonical strategies for common types.

use rand::RngCore;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A`, as returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A> {
    _marker: std::marker::PhantomData<A>,
}

/// Strategy generating arbitrary values of `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn new_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::from_raw(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_fill() {
        let mut rng = TestRng::from_seed(9);
        let a: [u8; 16] = <[u8; 16]>::arbitrary(&mut rng);
        assert_ne!(a, [0u8; 16]);
    }

    #[test]
    fn bools_vary() {
        let mut rng = TestRng::from_seed(10);
        let draws: Vec<bool> = (0..64).map(|_| bool::arbitrary(&mut rng)).collect();
        assert!(draws.iter().any(|&b| b));
        assert!(draws.iter().any(|&b| !b));
    }
}
