//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of proptest its test suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * `any::<T>()` for integers, `bool`, byte arrays and [`sample::Index`],
//! * integer-range strategies and [`Strategy::prop_map`],
//! * [`collection::vec`] with fixed or ranged sizes.
//!
//! Unlike the real crate there is **no shrinking**: a failing case panics
//! with the generated inputs so it can be reproduced from the printed seed.
//! Generation is fully deterministic: the per-test RNG seed is derived from
//! the test's module path and name, XORed with `PROPTEST_SEED` when that
//! env var is set. Case counts default to 64 and honour `PROPTEST_CASES`.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of the real prelude's `prop` re-export module
    /// (`prop::collection::vec`, `prop::sample::Index`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Define property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
///
/// In a test module, write `#[test]` above each property `fn` as with the
/// real crate; the attribute passes through.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                    // Render inputs before the body runs: the body may consume them.
                    let inputs = [$(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),+]
                        .join(", ");
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\ninputs: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err,
                            inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a proptest body, failing the case (not the
/// whole process) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert two expressions are equal inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Assert two expressions are unequal inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}
