//! Offline, API-compatible subset of the `rand` crate (0.8 line).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `rand` it actually uses: the [`RngCore`] and
//! [`SeedableRng`] traits plus the fallible-fill [`Error`] type. All
//! concrete generators live in the workspace itself (`SplitMix64` in
//! `ppda-field`, `Xoshiro256` in `ppda-sim`, `CtrDrbg` in `ppda-crypto`).

#![forbid(unsafe_code)]

use std::fmt;

/// Error type for fallible RNG operations ([`RngCore::try_fill_bytes`]).
///
/// The deterministic generators in this workspace never fail, so this type
/// exists only to satisfy the trait signature.
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Wrap a static message as an RNG error.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Error").field("msg", &self.msg).finish()
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: a source of random bits.
///
/// Matches `rand 0.8`'s trait of the same name.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fill `dest` with random bytes, reporting failure as an [`Error`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A random number generator that can be explicitly seeded.
///
/// Matches `rand 0.8`'s trait of the same name, minus the OS-entropy
/// constructors (pointless in a deterministic simulator).
pub trait SeedableRng: Sized {
    /// Seed material for this generator.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Create a new instance from the given seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Create a new instance seeded from a single `u64`, by expanding it
    /// through SplitMix64 (same expansion rule as `rand 0.8`(ish) — the
    /// concrete generators in this workspace override this anyway).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl SeedableRng for Counter {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            Counter(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn mut_ref_forwards() {
        let mut c = Counter(0);
        let r = &mut c;
        assert_eq!(RngCore::next_u64(&mut &mut *r), 1);
        assert_eq!(c.next_u64(), 2);
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = Counter::seed_from_u64(7);
        let mut b = Counter::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn error_displays_message() {
        let e = Error::new("nope");
        assert_eq!(e.to_string(), "nope");
    }
}
