//! Offline, API-compatible subset of the `bytes` crate.
//!
//! Provides the [`Buf`] / [`BufMut`] cursor traits for `&[u8]` and
//! `Vec<u8>` with the big-endian accessors the wire formats use. Semantics
//! (big-endian defaults, panic on under/overflow) match the real crate so
//! swapping the real dependency in later is a no-op.

#![forbid(unsafe_code)]

/// Read access to a contiguous buffer, advancing an internal cursor.
pub trait Buf {
    /// Bytes remaining between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// The bytes remaining, starting at the cursor.
    fn chunk(&self) -> &[u8];

    /// Advance the cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// `true` while any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte and advance.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16` and advance.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32` and advance.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64` and advance.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    /// Read a big-endian `u128` and advance.
    fn get_u128(&mut self) -> u128 {
        let mut b = [0u8; 16];
        b.copy_from_slice(&self.chunk()[..16]);
        self.advance(16);
        u128::from_be_bytes(b)
    }

    /// Copy `dst.len()` bytes into `dst` and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Write access to a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u128`.
    fn put_u128(&mut self, v: u128) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut out = Vec::new();
        out.put_u8(0xAB);
        out.put_u16(0x1234);
        out.put_u32(0xDEAD_BEEF);
        out.put_u64(0x0102_0304_0506_0708);
        out.put_u128(0x0102_0304_0506_0708_090A_0B0C_0D0E_0F10);
        let mut buf = out.as_slice();
        assert_eq!(buf.remaining(), 1 + 2 + 4 + 8 + 16);
        assert_eq!(buf.get_u8(), 0xAB);
        assert_eq!(buf.get_u16(), 0x1234);
        assert_eq!(buf.get_u32(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(buf.get_u128(), 0x0102_0304_0506_0708_090A_0B0C_0D0E_0F10);
        assert!(!buf.has_remaining());
    }

    #[test]
    fn big_endian_on_the_wire() {
        let mut out = Vec::new();
        out.put_u16(0x0102);
        assert_eq!(out, [0x01, 0x02]);
    }

    #[test]
    fn advance_and_copy() {
        let data = [1u8, 2, 3, 4, 5];
        let mut buf = &data[..];
        buf.advance(2);
        let mut dst = [0u8; 2];
        buf.copy_to_slice(&mut dst);
        assert_eq!(dst, [3, 4]);
        assert_eq!(buf.remaining(), 1);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut buf = &[1u8, 2][..];
        buf.advance(3);
    }
}
